"""Tests for the client block cache and the VM page-trading model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import CacheError, SimulationError
from repro.fs.cache import BlockCache
from repro.fs.vm import VirtualMemory


@pytest.fixture()
def cache():
    return BlockCache(block_size=4096)


class TestBlockCache:
    def test_insert_and_get(self, cache):
        block = cache.insert((1, 0), now=1.0)
        assert cache.get((1, 0)) is block
        assert (1, 0) in cache
        assert len(cache) == 1
        assert cache.size_bytes == 4096

    def test_double_insert_raises(self, cache):
        cache.insert((1, 0), now=1.0)
        with pytest.raises(CacheError):
            cache.insert((1, 0), now=2.0)

    def test_lru_order(self, cache):
        cache.insert((1, 0), now=1.0)
        cache.insert((1, 1), now=2.0)
        cache.insert((2, 0), now=3.0)
        assert cache.lru_block().key == (1, 0)
        cache.touch((1, 0), now=4.0)
        assert cache.lru_block().key == (1, 1)

    def test_evict_lru_removes_oldest(self, cache):
        cache.insert((1, 0), now=1.0)
        cache.insert((1, 1), now=2.0)
        victim = cache.evict_lru()
        assert victim.key == (1, 0)
        assert len(cache) == 1

    def test_evict_empty_raises(self, cache):
        with pytest.raises(CacheError):
            cache.evict_lru()

    def test_touch_nonresident_raises(self, cache):
        with pytest.raises(CacheError):
            cache.touch((1, 0), now=1.0)

    def test_mark_dirty_and_clean(self, cache):
        cache.insert((1, 0), now=1.0)
        cache.mark_dirty((1, 0), now=2.0)
        assert cache.dirty_count == 1
        block = cache.get((1, 0))
        assert block.dirty
        assert block.dirty_since == 2.0
        cache.mark_clean((1, 0))
        assert cache.dirty_count == 0
        assert not block.dirty

    def test_redirty_keeps_original_dirty_since(self, cache):
        cache.insert((1, 0), now=1.0)
        cache.mark_dirty((1, 0), now=2.0)
        cache.mark_dirty((1, 0), now=9.0)
        assert cache.get((1, 0)).dirty_since == 2.0

    def test_dirty_after_clean_restamps(self, cache):
        cache.insert((1, 0), now=1.0)
        cache.mark_dirty((1, 0), now=2.0)
        cache.mark_clean((1, 0))
        cache.mark_dirty((1, 0), now=10.0)
        assert cache.get((1, 0)).dirty_since == 10.0

    def test_mark_dirty_nonresident_raises(self, cache):
        with pytest.raises(CacheError):
            cache.mark_dirty((1, 0), now=1.0)

    def test_mark_clean_nondirty_raises(self, cache):
        cache.insert((1, 0), now=1.0)
        with pytest.raises(CacheError):
            cache.mark_clean((1, 0))

    def test_dirty_blocks_older_than(self, cache):
        cache.insert((1, 0), now=0.0)
        cache.insert((1, 1), now=0.0)
        cache.mark_dirty((1, 0), now=1.0)
        cache.mark_dirty((1, 1), now=50.0)
        old = cache.dirty_blocks_older_than(30.0)
        assert [b.key for b in old] == [(1, 0)]

    def test_dirty_age_query_after_clean_and_redirty(self, cache):
        """The early-exit scan stays correct as blocks leave and re-enter
        the dirty set (re-dirtied blocks re-stamp at the tail)."""
        for index in range(4):
            cache.insert((1, index), now=0.0)
            cache.mark_dirty((1, index), now=float(index))
        cache.mark_clean((1, 1))
        cache.mark_dirty((1, 1), now=10.0)  # back, with a newer stamp
        old = cache.dirty_blocks_older_than(2.5)
        assert [b.key for b in old] == [(1, 0), (1, 2)]
        assert [b.key for b in cache.dirty_blocks_older_than(100.0)] == [
            (1, 0),
            (1, 2),
            (1, 3),
            (1, 1),
        ]

    def test_dirty_age_query_with_nonmonotonic_stamps(self, cache):
        """A caller stamping out of order loses the early exit but not
        correctness (full-scan fallback)."""
        cache.insert((1, 0), now=0.0)
        cache.insert((1, 1), now=0.0)
        cache.insert((1, 2), now=0.0)
        cache.mark_dirty((1, 0), now=20.0)
        cache.mark_dirty((1, 1), now=5.0)  # out of order
        cache.mark_dirty((1, 2), now=30.0)
        assert {b.key for b in cache.dirty_blocks_older_than(10.0)} == {(1, 1)}
        assert {b.key for b in cache.dirty_blocks_older_than(25.0)} == {
            (1, 0),
            (1, 1),
        }

    def test_dirty_order_invariant_resets_when_empty(self, cache):
        cache.insert((1, 0), now=0.0)
        cache.insert((1, 1), now=0.0)
        cache.mark_dirty((1, 0), now=20.0)
        cache.mark_dirty((1, 1), now=5.0)  # breaks the order invariant
        assert not cache._dirty_in_order
        cache.mark_clean((1, 0))
        cache.mark_clean((1, 1))
        assert cache._dirty_in_order  # empty set restores it
        cache.mark_dirty((1, 1), now=1.0)
        assert cache._dirty_in_order

    def test_dirty_order_recovers_once_offender_leaves(self, cache):
        """Regression: cleaning the one out-of-order block restores the
        early-exit scan even while other blocks stay dirty.  The old
        boolean flag stayed stuck until the whole dirty set drained."""
        cache.insert((1, 0), now=0.0)
        cache.insert((1, 1), now=0.0)
        cache.insert((1, 2), now=0.0)
        cache.mark_dirty((1, 0), now=20.0)
        cache.mark_dirty((1, 1), now=5.0)  # the out-of-order stamp
        cache.mark_dirty((1, 2), now=30.0)
        assert not cache._dirty_in_order
        cache.mark_clean((1, 1))  # offender leaves; (1,0),(1,2) stay dirty
        assert cache.dirty_count == 2
        assert cache._dirty_in_order
        # ...and the early-exit scan is still correct.
        assert [b.key for b in cache.dirty_blocks_older_than(25.0)] == [(1, 0)]

    def test_dirty_order_recovers_when_offender_removed(self, cache):
        cache.insert((1, 0), now=0.0)
        cache.insert((1, 1), now=0.0)
        cache.mark_dirty((1, 0), now=20.0)
        cache.mark_dirty((1, 1), now=5.0)
        assert not cache._dirty_in_order
        cache.remove((1, 1))
        assert cache.dirty_count == 1
        assert cache._dirty_in_order

    def test_blocks_of_file_uses_index(self, cache):
        cache.insert((1, 0), now=0.0)
        cache.insert((1, 5), now=0.0)
        cache.insert((2, 0), now=0.0)
        assert {b.key for b in cache.blocks_of_file(1)} == {(1, 0), (1, 5)}
        assert cache.blocks_of_file(99) == []

    def test_dirty_blocks_of_file(self, cache):
        cache.insert((1, 0), now=0.0)
        cache.insert((1, 1), now=0.0)
        cache.mark_dirty((1, 1), now=1.0)
        assert [b.key for b in cache.dirty_blocks_of_file(1)] == [(1, 1)]

    def test_invalidate_file(self, cache):
        cache.insert((1, 0), now=0.0)
        cache.insert((2, 0), now=0.0)
        cache.mark_dirty((1, 0), now=1.0)
        victims = cache.invalidate_file(1)
        assert len(victims) == 1
        assert cache.dirty_count == 0
        assert (2, 0) in cache

    def test_remove_cleans_all_indexes(self, cache):
        cache.insert((1, 0), now=0.0)
        cache.mark_dirty((1, 0), now=1.0)
        cache.remove((1, 0))
        assert cache.dirty_count == 0
        assert cache.blocks_of_file(1) == []
        with pytest.raises(CacheError):
            cache.remove((1, 0))

    def test_evict_dirty_lru_clears_dirty_index(self, cache):
        cache.insert((1, 0), now=0.0)
        cache.mark_dirty((1, 0), now=1.0)
        cache.evict_lru(allow_dirty=True)
        assert cache.dirty_count == 0

    def test_evict_dirty_lru_refused_by_default(self, cache):
        """Regression: evict_lru used to silently drop dirty (unwritten)
        data; now it refuses unless the caller opts in."""
        cache.insert((1, 0), now=0.0)
        cache.mark_dirty((1, 0), now=1.0)
        with pytest.raises(CacheError, match="dirty block"):
            cache.evict_lru()
        assert (1, 0) in cache  # nothing was dropped
        assert cache.dirty_count == 1
        assert cache.dirty_evictions == 0

    def test_evict_dirty_lru_counts_dropped_bytes(self, cache):
        cache.insert((1, 0), now=0.0)
        cache.mark_dirty((1, 0), now=1.0)
        cache.insert((1, 1), now=2.0)
        victim = cache.evict_lru(allow_dirty=True)
        assert victim.key == (1, 0)
        assert cache.dirty_evictions == 1
        # Clean LRU evictions never touch the counter.
        cache.evict_lru()
        assert cache.dirty_evictions == 1

    def test_bad_block_size_raises(self):
        with pytest.raises(CacheError):
            BlockCache(block_size=0)

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["insert", "touch", "remove", "dirty"]),
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=5),
            ),
            max_size=100,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_index_consistency_property(self, ops):
        """The per-file index always mirrors the block map."""
        cache = BlockCache(block_size=4096)
        now = 0.0
        for op, file_id, index in ops:
            now += 1.0
            key = (file_id, index)
            if op == "insert" and key not in cache:
                cache.insert(key, now)
            elif op == "touch" and key in cache:
                cache.touch(key, now)
            elif op == "remove" and key in cache:
                cache.remove(key)
            elif op == "dirty" and key in cache:
                cache.mark_dirty(key, now)
        indexed = {
            key for keys in cache._by_file.values() for key in keys
        }
        assert indexed == set(cache._blocks)
        assert set(cache._dirty) <= set(cache._blocks)

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from([
                    "insert", "touch", "remove", "dirty", "clean",
                    "invalidate", "clear", "evict",
                ]),
                st.integers(min_value=0, max_value=4),
                st.integers(min_value=0, max_value=4),
                # Out-of-order dirty stamps get exercised too: offset
                # can reach back before ``now``.
                st.integers(min_value=-40, max_value=2),
            ),
            max_size=120,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_full_invariant_property(self, ops):
        """Every structural invariant holds under arbitrary interleaving
        of the whole public mutation surface, including backdated dirty
        stamps, file invalidation, and dirty-opt-in eviction."""
        cache = BlockCache(block_size=4096)
        now = 0.0
        for op, file_id, index, offset in ops:
            now += 1.0
            key = (file_id, index)
            if op == "insert" and key not in cache:
                cache.insert(key, now)
            elif op == "touch" and key in cache:
                cache.touch(key, now)
            elif op == "remove" and key in cache:
                cache.remove(key)
            elif op == "dirty" and key in cache:
                cache.mark_dirty(key, now + offset)
            elif op == "clean" and key in cache and cache.get(key).dirty:
                cache.mark_clean(key)
            elif op == "invalidate":
                cache.invalidate_file(file_id)
            elif op == "clear":
                cache.clear()
            elif op == "evict" and len(cache):
                cache.evict_lru(allow_dirty=True)

            blocks = cache._blocks
            # The per-file index exactly mirrors the block map.
            indexed = {
                k for keys in cache._by_file.values() for k in keys
            }
            assert indexed == set(blocks)
            assert all(cache._by_file.values())  # no empty file buckets
            # Dirty bookkeeping: the dirty dict matches the block flags.
            flagged = {k for k, b in blocks.items() if b.dirty}
            assert set(cache._dirty) == flagged
            assert cache.dirty_count == len(flagged)
            # Byte accounting.
            assert cache.size_bytes == 4096 * len(blocks)
            # The out-of-order set only names dirty-resident blocks.
            assert cache._out_of_order <= set(cache._dirty)
            # The age query equals a brute-force filter, in both modes.
            for threshold in (now - 30.0, now + 1.0):
                expected = [
                    b for b in cache._dirty.values()
                    if b.dirty_since <= threshold
                ]
                got = cache.dirty_blocks_older_than(threshold)
                assert {b.key for b in got} == {b.key for b in expected}


class TestVirtualMemory:
    def make(self, total=1000, base=200, floor=50):
        return VirtualMemory(
            total_pages=total,
            preference_seconds=1200.0,
            base_demand_pages=base,
            cache_floor_pages=floor,
        )

    def test_initial_accounting(self):
        vm = self.make()
        assert vm.active == 200
        assert vm.free == 800
        assert vm.cache == 0

    def test_claim_from_free(self):
        vm = self.make()
        assert vm.claim_for_cache(0.0, 10) == 10
        assert vm.cache == 10
        assert vm.free == 790

    def test_claim_respects_young_aging_pages(self):
        vm = self.make()
        vm.claim_for_cache(0.0, 800)  # all free pages taken
        vm.release(0.0, 100)  # pages begin aging at t=0
        assert vm.claim_for_cache(100.0, 50) == 0  # too young
        assert vm.claim_for_cache(1300.0, 50) == 50  # 20 minutes later

    def test_demand_takes_free_first(self):
        vm = self.make()
        shortfall = vm.demand(0.0, 100)
        assert shortfall == 0
        assert vm.active == 300

    def test_demand_reclaims_own_aging(self):
        vm = self.make()
        vm.release(0.0, 100)  # active 100, aging 100, free 800
        vm.claim_for_cache(0.0, 700)  # cache 700, free 100
        shortfall = vm.demand(1.0, 150)  # 100 free + 50 reclaimed aging
        assert shortfall == 0
        assert vm.aging == 50
        assert vm.active == 250

    def test_demand_shortfall_from_cache(self):
        vm = self.make()
        vm.claim_for_cache(0.0, 800)
        shortfall = vm.demand(1.0, 100)
        assert shortfall == 100
        vm.release_from_cache(shortfall)
        vm.absorb(shortfall)
        assert vm.active == 300
        assert vm.cache == 700

    def test_demand_respects_cache_floor(self):
        vm = self.make(total=300, base=100, floor=50)
        vm.claim_for_cache(0.0, 200)
        shortfall = vm.demand(1.0, 10_000)  # absurd demand
        assert shortfall == 150  # cache can only give down to the floor

    def test_release_caps_at_active(self):
        vm = self.make()
        vm.release(0.0, 10_000)
        assert vm.active == 0
        assert vm.aging == 200

    def test_release_from_cache_validates(self):
        vm = self.make()
        with pytest.raises(SimulationError):
            vm.release_from_cache(1)

    def test_absorb_validates(self):
        vm = self.make()
        with pytest.raises(SimulationError):
            vm.absorb(10_000)

    def test_overcommit_construction_raises(self):
        with pytest.raises(SimulationError):
            VirtualMemory(total_pages=100, preference_seconds=1.0,
                          base_demand_pages=90, cache_floor_pages=20)

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["claim", "demand", "release"]),
                st.integers(min_value=1, max_value=200),
            ),
            max_size=80,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_page_conservation_property(self, ops):
        """active + aging + cache + free == total, always."""
        vm = VirtualMemory(
            total_pages=1000, preference_seconds=100.0,
            base_demand_pages=100, cache_floor_pages=10,
        )
        now = 0.0
        for op, amount in ops:
            now += 10.0
            if op == "claim":
                vm.claim_for_cache(now, amount)
            elif op == "demand":
                shortfall = vm.demand(now, amount)
                # the "client" surrenders everything asked
                vm.release_from_cache(shortfall)
                vm.absorb(shortfall)
            else:
                vm.release(now, amount)
            total = vm.active + vm.aging + vm.cache + vm.free
            assert total == 1000
