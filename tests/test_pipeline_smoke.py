"""Pipeline smoke tests: cache round-trips, corruption, key hygiene.

These run at a tiny scale so the whole module stays in the tier-1
budget; the full-scale determinism crosscheck lives in
``test_pipeline_determinism.py``.
"""

from __future__ import annotations


from dataclasses import dataclass

import pytest

from repro.experiments import ExperimentContext
from repro.pipeline import (
    PipelineReport,
    run_stage,
)
from repro.pipeline import (
    ArtifactCache,
    build_traces,
    resolve_cache,
    resolve_workers,
    trace_tasks,
)

SCALE = 0.02


def test_cold_then_warm_round_trip(tmp_path):
    """A warm context rebuilds the exact artifacts the cold one stored."""
    cold = ExperimentContext(scale=SCALE, seed=7, cache=tmp_path)
    cold_traces = cold.traces()
    cold_accesses = cold.accesses()
    cold_results = cold.cluster_results()
    assert cold._artifact_cache.stats.hits == 0
    assert cold._artifact_cache.stats.stores == cold._artifact_cache.stats.misses > 0

    warm = ExperimentContext(scale=SCALE, seed=7, cache=tmp_path)
    warm_traces = warm.traces()
    warm_accesses = warm.accesses()
    warm_results = warm.cluster_results()
    stats = warm._artifact_cache.stats
    assert stats.misses == 0 and stats.corrupt == 0
    assert stats.hits == cold._artifact_cache.stats.stores

    assert warm_traces == cold_traces
    assert len(warm_accesses) == len(cold_accesses)
    for a, b in zip(warm_accesses, cold_accesses):
        assert a.open_record == b.open_record
        assert a.close_record == b.close_record
        assert a.runs == b.runs
        assert a.reposition_count == b.reposition_count
    assert len(warm_results) == len(cold_results)
    for a, b in zip(warm_results, cold_results):
        assert a.server_counters == b.server_counters
        assert a.final_counters == b.final_counters
        assert a.snapshots == b.snapshots
        assert a.config == b.config
        assert (a.duration, a.records_replayed) == (b.duration, b.records_replayed)


def test_warm_accesses_alias_trace_records(tmp_path):
    """Cached accesses share record objects with the cached traces, the
    same aliasing the serial assembler produces."""
    ExperimentContext(scale=SCALE, seed=7, cache=tmp_path).accesses()
    warm = ExperimentContext(scale=SCALE, seed=7, cache=tmp_path)
    traces = warm.traces()
    record_ids = {id(r) for t in traces for r in t.records}
    for access in warm.accesses():
        assert id(access.open_record) in record_ids
        assert id(access.close_record) in record_ids


def test_corrupt_entries_are_misses_not_fatal(tmp_path):
    """Truncated/garbage cache files are ignored, unlinked, and rebuilt."""
    cold = ExperimentContext(scale=SCALE, seed=7, cache=tmp_path)
    expected = cold.traces()
    cache = cold._artifact_cache

    entries = sorted(tmp_path.rglob("*.pkl"))
    assert entries
    entries[0].write_bytes(b"not an artifact at all")
    entries[1].write_bytes(entries[1].read_bytes()[:40])  # truncated

    warm = ExperimentContext(scale=SCALE, seed=7, cache=tmp_path)
    assert warm.traces() == expected
    stats = warm._artifact_cache.stats
    assert stats.corrupt == 2
    assert stats.misses == 2
    # the corrupt entries were replaced by fresh stores
    assert stats.stores == 2
    again = ExperimentContext(scale=SCALE, seed=7, cache=tmp_path)
    assert again.traces() == expected
    assert again._artifact_cache.stats.misses == 0


def test_unwritable_cache_is_not_fatal(tmp_path):
    """An unusable cache root degrades to recompute, not an error."""
    root = tmp_path / "blocked"
    root.write_text("a file where the cache root should be")
    ctx = ExperimentContext(scale=SCALE, seed=7, cache=root)
    assert len(ctx.traces()) == 8
    assert ctx._artifact_cache.stats.stores == 0


def test_keys_stable_and_parameter_sensitive(tmp_path):
    cache = ArtifactCache(tmp_path)
    tasks = trace_tasks(0.05, 1991, 4)
    keys = [cache.key_for(t.key_fields()) for t in tasks]
    assert keys == [cache.key_for(t.key_fields()) for t in tasks]
    assert len(set(keys)) == len(keys)  # each trace its own entry
    bumped = trace_tasks(0.05, 1992, 4)
    assert all(
        cache.key_for(b.key_fields()) != k for b, k in zip(bumped, keys)
    )
    scaled = trace_tasks(0.1, 1991, 4)
    assert all(
        cache.key_for(s.key_fields()) != k for s, k in zip(scaled, keys)
    )


def test_cache_knob_resolution(tmp_path):
    assert resolve_cache(False) is None
    assert resolve_cache(None) is None
    assert resolve_cache(tmp_path).root == tmp_path
    shared = ArtifactCache(tmp_path)
    assert resolve_cache(shared) is shared
    assert resolve_cache(True).root is not None


def test_workers_knob_resolution():
    assert resolve_workers(None) == 1
    assert resolve_workers(1) == 1
    assert resolve_workers(3) == 3
    assert resolve_workers(0) >= 1  # one per core
    with pytest.raises(ValueError):
        resolve_workers(-2)


def test_pooled_accesses_match_per_trace_order(tmp_path):
    """The pooled access list is the per-trace lists concatenated in
    trace order (what the serial assembler produced)."""
    from repro.analysis.episodes import assemble_accesses

    ctx = ExperimentContext(scale=SCALE, seed=7, cache=False)
    traces = ctx.traces()
    pooled = ctx.accesses()
    expected = []
    for trace in traces:
        expected.extend(assemble_accesses(trace.records))
    assert len(pooled) == len(expected)
    for a, b in zip(pooled, expected):
        assert a.open_record == b.open_record
        assert a.close_record == b.close_record
        assert a.runs == b.runs
        assert a.reposition_count == b.reposition_count


def test_build_traces_matches_generate_standard_traces(tmp_path):
    from repro.workload import generate_standard_traces

    built = build_traces(SCALE, 7, 4)
    reference = generate_standard_traces(scale=SCALE, seed=7, client_count=4)
    assert built == reference


# Module-level so the pool branch of run_stage can pickle it.
@dataclass
class _SquareTask:
    value: int

    def key_fields(self):
        return {"kind": "square-test", "value": self.value}

    def run(self):
        return {"square": self.value * self.value}

    def codec_context(self):
        return None


class TestStageTimingWorkers:
    """StageTiming must report requested vs effective workers -- the old
    single field recorded the pool size, so a ``workers=8`` stage with
    one miss looked like the caller asked for serial, and an all-hit
    stage reported 0 workers requested."""

    def test_pool_request_with_one_miss_reports_both(self, tmp_path):
        cache = resolve_cache(tmp_path)
        report = PipelineReport()
        run_stage(
            "one-miss", [_SquareTask(3)], workers=8, cache=cache, report=report
        )
        timing = report.stages[-1]
        assert timing.workers == 8  # what the caller asked for
        assert timing.workers_effective == 1  # serial fallback, one miss
        assert (timing.cache_hits, timing.cache_misses) == (0, 1)

    def test_all_hit_stage_keeps_requested_workers(self, tmp_path):
        cache = resolve_cache(tmp_path)
        tasks = [_SquareTask(3), _SquareTask(4)]
        run_stage("warmup", tasks, workers=1, cache=cache)
        report = PipelineReport()
        results = run_stage(
            "all-hit", tasks, workers=8, cache=cache, report=report
        )
        assert results == [{"square": 9}, {"square": 16}]
        timing = report.stages[-1]
        assert timing.workers == 8
        assert timing.workers_effective == 0  # nothing actually ran
        assert (timing.cache_hits, timing.cache_misses) == (2, 0)

    def test_pool_size_is_capped_by_misses(self):
        report = PipelineReport()
        results = run_stage(
            "pooled",
            [_SquareTask(2), _SquareTask(5)],
            workers=8,
            report=report,
        )
        assert results == [{"square": 4}, {"square": 25}]
        timing = report.stages[-1]
        assert timing.workers == 8
        assert timing.workers_effective == 2  # pool capped at the misses

    def test_serial_request_stays_serial(self):
        report = PipelineReport()
        run_stage("serial", [_SquareTask(2), _SquareTask(5)], report=report)
        timing = report.stages[-1]
        assert timing.workers == 1
        assert timing.workers_effective == 1
