"""Tests for the experiment registry, CLI, and rendering helpers."""

import pytest

from repro.common.errors import ConfigError
from repro.common.render import (
    byte_label,
    format_number,
    format_with_range,
    format_with_spread,
    render_table,
    seconds_label,
)
from repro.experiments import (
    EXPERIMENT_IDS,
    PAPER_EXPECTATIONS,
    ExperimentContext,
    run_experiment,
)
from repro.experiments.cli import build_parser, main


class TestRegistry:
    def test_all_twentyone_experiments_registered(self):
        # 12 tables + 4 figures from the paper, plus the beyond-the-paper
        # fault, lossy-network, replication, integrity, and scale-out
        # studies.
        assert len(EXPERIMENT_IDS) == 21
        assert "faults" in EXPERIMENT_IDS
        assert "rpc_loss" in EXPERIMENT_IDS
        assert "replication" in EXPERIMENT_IDS
        assert "integrity" in EXPERIMENT_IDS
        assert "scale_out" in EXPERIMENT_IDS
        assert set(PAPER_EXPECTATIONS) == set(EXPERIMENT_IDS)

    def test_unknown_experiment_raises(self):
        with pytest.raises(ConfigError, match="unknown experiment"):
            run_experiment("table99")

    def test_context_validates_scale(self):
        with pytest.raises(ConfigError):
            ExperimentContext(scale=0.0)

    def test_context_client_count_scales(self):
        assert ExperimentContext(scale=1.0).client_count == 40
        assert ExperimentContext(scale=0.1).client_count == 4

    def test_traces_are_cached(self, experiment_context):
        assert experiment_context.traces() is experiment_context.traces()

    @pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
    def test_every_experiment_runs(self, experiment_context, experiment_id):
        result = run_experiment(experiment_id, experiment_context)
        assert result.experiment_id == experiment_id
        assert result.rendered
        assert result.metrics
        assert result.paper_expectation
        assert all(
            isinstance(value, (int, float)) for value in result.metrics.values()
        )

    def test_experiment_results_deterministic(self):
        a = run_experiment("table10", ExperimentContext(scale=0.03, seed=5))
        b = run_experiment("table10", ExperimentContext(scale=0.03, seed=5))
        assert a.metrics == b.metrics


class TestCli:
    def test_parser_accepts_experiment(self):
        args = build_parser().parse_args(["table2", "--scale", "0.2"])
        assert args.experiment == "table2"
        assert args.scale == 0.2

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table99"])

    def test_main_prints_result(self, capsys):
        exit_code = main(["figure3", "--scale", "0.03", "--seed", "7"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
        assert "Paper expectation" in output


class TestRendering:
    def test_format_number_integers(self):
        assert format_number(42.0) == "42"
        assert format_number(float("nan")) == "NA"
        assert format_number(3.14159, 2) == "3.14"

    def test_format_with_spread(self):
        assert format_with_spread(8.0, 36.0) == "8.0 (36)"

    def test_format_with_range(self):
        assert format_with_range(1.7, 0.79, 3.35) == "1.70 (0.79-3.35)"

    def test_render_table_alignment(self):
        text = render_table("T", ["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len({len(line) for line in lines[2:5]}) <= 2

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table("T", ["a"], [["1", "2"]])

    def test_byte_label(self):
        assert byte_label(100) == "100"
        assert byte_label(1024) == "1K"
        assert byte_label(1024 * 1024) == "1M"
        assert byte_label(10 * 1024**3) == "10G"

    def test_seconds_label(self):
        assert seconds_label(0.01) == "10ms"
        assert seconds_label(5) == "5s"
        assert seconds_label(120) == "2m"
        assert seconds_label(7200) == "2h"
        assert seconds_label(172800) == "2d"
