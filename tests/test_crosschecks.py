"""Cross-component invariants: independent parts of the system must
agree about the same quantities."""

from repro.consistency import compute_actions
from repro.fs import ClusterConfig, run_cluster_on_trace
from repro.fs.counters import ClientCounters
from repro.trace.records import OpenRecord
from repro.workload import STANDARD_PROFILES, generate_trace


def aggregate(result) -> ClientCounters:
    return ClientCounters.aggregate(result.final_counters.values())


class TestClientServerAgreement:
    def test_client_and_server_count_the_same_block_reads(self, cluster_result):
        total = aggregate(cluster_result)
        server = cluster_result.server_counters
        # Every client fetch RPC lands at the server exactly once.
        assert server.block_read_bytes == (
            total.cache_read_miss_bytes + total.write_fetch_bytes
        )

    def test_client_and_server_count_the_same_writebacks(self, cluster_result):
        total = aggregate(cluster_result)
        server = cluster_result.server_counters
        assert server.block_write_bytes == total.bytes_written_to_server

    def test_passthrough_agreement(self, cluster_result):
        total = aggregate(cluster_result)
        server = cluster_result.server_counters
        assert server.passthrough_read_bytes == (
            total.shared_bytes_read + total.directory_bytes_read
        )
        assert server.passthrough_write_bytes == total.shared_bytes_written

    def test_paging_agreement(self, cluster_result):
        total = aggregate(cluster_result)
        server = cluster_result.server_counters
        assert server.paging_bytes == (
            total.paging_backing_bytes_read + total.paging_backing_bytes_written
        )

    def test_opens_counted_once_per_open_record(
        self, small_trace, cluster_result
    ):
        opens = sum(1 for r in small_trace.records if r.kind == "open")
        assert cluster_result.server_counters.open_rpcs == opens
        total = aggregate(cluster_result)
        assert total.file_open_ops == opens

    def test_cache_pages_never_exceed_vm_grant(self, small_trace):
        """During a replay the block count stays within the VM grant."""
        config = ClusterConfig(client_count=4)
        from repro.fs.cluster import Cluster

        cluster = Cluster(config, seed=11)
        checked = 0
        for record in small_trace.records[:20_000]:
            if record.time > cluster.engine.now:
                cluster.engine.run_until(record.time)
            cluster.dispatch(record)
            if checked % 500 == 0:
                for client in cluster.clients:
                    assert len(client.cache) + client._spare_pages == (
                        client.vm.cache
                    )
            checked += 1


class TestAnalysisSimulatorAgreement:
    def test_recall_upper_bound_vs_simulator(self):
        """The trace-level recall estimate (Table 10) is an upper bound
        on the recalls the simulator actually issues."""
        trace = generate_trace(STANDARD_PROFILES[0], seed=31, scale=0.05)
        actions = compute_actions(trace.records)
        result = run_cluster_on_trace(
            trace.records, trace.duration, ClusterConfig(client_count=4),
            seed=5,
        )
        simulated = result.server_counters.recalls_issued
        # The analysis counts every open in the flush horizon; the
        # simulator skips those whose data already flushed or whose
        # blocks were never dirty.  Allow slack for client-id folding
        # (4 simulated clients stand in for 40 trace clients).
        assert simulated <= actions.recall_opens * 2

    def test_write_sharing_detected_by_both(self, shared_heavy_trace):
        actions = compute_actions(shared_heavy_trace.records)
        result = run_cluster_on_trace(
            shared_heavy_trace.records, shared_heavy_trace.duration,
            ClusterConfig(client_count=4), seed=5,
        )
        assert actions.write_sharing_opens > 0
        assert result.server_counters.concurrent_write_sharing_opens > 0

    def test_all_profiles_generate_valid_traces(self):
        """Every standard profile produces a legal, analyzable trace."""
        for index, profile in enumerate(STANDARD_PROFILES):
            trace = generate_trace(profile, seed=100 + index, scale=0.03)
            assert trace.records, profile.name
            opens = [r for r in trace.records if isinstance(r, OpenRecord)]
            assert opens, profile.name
            assert trace.validation.records == len(trace.records)
