"""Integration tests: replaying traces through the cluster simulator."""

import pytest

from repro.caching import (
    compute_cache_sizes,
    compute_cleaning,
    compute_effectiveness,
    compute_replacement,
    compute_server_traffic,
    compute_traffic_sources,
    machine_days,
)
from repro.fs import ClusterConfig, run_cluster_on_trace
from repro.fs.cluster import Cluster
from repro.fs.counters import ClientCounters


def aggregate(result):
    return ClientCounters.aggregate(result.final_counters.values())


class TestReplay:
    def test_replays_all_records(self, small_trace, cluster_result):
        assert cluster_result.records_replayed == len(small_trace.records)

    def test_replay_is_deterministic(self, small_trace):
        config = ClusterConfig(client_count=4)
        a = run_cluster_on_trace(small_trace.records, small_trace.duration,
                                 config, seed=9)
        b = run_cluster_on_trace(small_trace.records, small_trace.duration,
                                 config, seed=9)
        assert aggregate(a) == aggregate(b)
        assert a.server_counters == b.server_counters

    def test_byte_conservation(self, small_trace, cluster_result):
        """Raw file bytes seen by clients equal the trace's run bytes
        plus shared passthrough."""
        total = aggregate(cluster_result)
        trace_reads = sum(r.length for r in small_trace.records
                          if r.kind == "read_run")
        trace_writes = sum(r.length for r in small_trace.records
                           if r.kind == "write_run")
        assert total.file_bytes_read + total.shared_bytes_read == trace_reads
        assert (total.file_bytes_written + total.shared_bytes_written
                == trace_writes)

    def test_server_bytes_not_more_than_raw_plus_fetch_overhead(
        self, cluster_result
    ):
        total = aggregate(cluster_result)
        # The caches must filter traffic, not amplify it wildly.
        assert total.server_bytes < 1.5 * total.raw_total_bytes

    def test_cache_sizes_within_memory(self, cluster_result):
        config = cluster_result.config
        for snaps in cluster_result.snapshots.values():
            for snap in snaps:
                assert snap.counters.cache_size_bytes <= config.client_memory

    def test_snapshots_cover_duration(self, cluster_result):
        for snaps in cluster_result.snapshots.values():
            assert snaps[0].time <= cluster_result.config.snapshot_interval
            assert snaps[-1].time == pytest.approx(cluster_result.duration)

    def test_counters_monotone_across_snapshots(self, cluster_result):
        for snaps in cluster_result.snapshots.values():
            previous = None
            for snap in snaps:
                if previous is not None:
                    assert (snap.counters.cache_read_ops
                            >= previous.counters.cache_read_ops)
                    assert (snap.counters.bytes_written_to_server
                            >= previous.counters.bytes_written_to_server)
                previous = snap

    def test_misses_not_more_than_ops(self, cluster_result):
        total = aggregate(cluster_result)
        assert total.cache_read_misses <= total.cache_read_ops
        assert total.migrated_read_misses <= total.migrated_read_ops
        assert total.paging_read_misses <= total.paging_read_ops

    def test_out_of_order_records_rejected(self, small_trace):
        from repro.common.errors import SimulationError

        records = list(small_trace.records[:100])
        records.reverse()
        cluster = Cluster(ClusterConfig(client_count=4), seed=1)
        with pytest.raises(SimulationError):
            cluster.replay(records, small_trace.duration)

    def test_paging_traffic_generated(self, cluster_result):
        total = aggregate(cluster_result)
        assert total.raw_paging_bytes > 0
        assert total.paging_backing_bytes_read > 0
        assert total.paging_code_bytes > 0

    def test_recalls_happen(self, cluster_result):
        assert cluster_result.server_counters.recalls_issued > 0

    def test_server_cache_hit_rate_positive(self, cluster_result):
        counters = cluster_result.server_counters
        assert counters.server_cache_hits > 0


class TestCachingTables:
    def test_machine_days_screen_idle(self, cluster_result):
        all_days = machine_days([cluster_result], only_active=False)
        active_days = machine_days([cluster_result])
        assert len(active_days) <= len(all_days)
        assert all(d.counters.file_open_ops >= 20 for d in active_days)

    def test_table4_plausible(self, cluster_result):
        result = compute_cache_sizes(machine_days([cluster_result]))
        assert result.size.count > 0
        assert 0 < result.size.mean < 24 * 1024 * 1024

    def test_table5_shares_sum_to_one(self, cluster_result):
        result = compute_traffic_sources(machine_days([cluster_result]))
        total = sum(stat.mean for stat in result.shares.values())
        assert total == pytest.approx(1.0, abs=0.01)

    def test_table6_ratios_in_range(self, cluster_result):
        result = compute_effectiveness(machine_days([cluster_result]))
        assert 0.0 < result.read_miss.mean < 1.0
        assert 0.0 < result.writeback_traffic.mean < 2.0
        assert 0.0 <= result.write_fetches.mean < 0.2

    def test_table7_shares_sum_to_one(self, cluster_result):
        result = compute_server_traffic(machine_days([cluster_result]))
        total = sum(stat.mean for stat in result.shares.values())
        assert total == pytest.approx(1.0, abs=0.01)
        assert 0.0 < result.global_server_bytes <= result.global_raw_bytes * 1.5

    def test_table8_shares_complementary(self, cluster_result):
        result = compute_replacement(machine_days([cluster_result]))
        if result.for_file_share.count:
            assert (result.for_file_share.mean + result.for_vm_share.mean
                    == pytest.approx(1.0))

    def test_table9_shares_sum_to_one(self, cluster_result):
        result = compute_cleaning(machine_days([cluster_result]))
        total = sum(stat.mean for stat in result.shares.values())
        assert total == pytest.approx(1.0, abs=0.01)

    def test_table9_delay_age_near_30s(self, cluster_result):
        result = compute_cleaning(machine_days([cluster_result]))
        age = result.ages["30-second delay"].mean
        assert 30.0 <= age <= 60.0

    def test_renderers_produce_text(self, cluster_result):
        days = machine_days([cluster_result])
        for compute in (
            compute_cache_sizes, compute_traffic_sources,
            compute_effectiveness, compute_server_traffic,
            compute_replacement, compute_cleaning,
        ):
            text = compute(days).render()
            assert "Table" in text
            assert len(text.splitlines()) > 4


class TestAblationConfigs:
    def test_write_through_increases_server_writes(self, small_trace):
        base = run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=4), seed=3,
        )
        through = run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=4, write_through=True), seed=3,
        )
        assert (aggregate(through).bytes_written_to_server
                > aggregate(base).bytes_written_to_server)

    def test_small_cache_fraction_increases_misses(self, small_trace):
        base = run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=4), seed=3,
        )
        tiny = run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=4, max_cache_fraction=0.05), seed=3,
        )
        assert (aggregate(tiny).cache_read_misses
                >= aggregate(base).cache_read_misses)

    def test_config_validation(self):
        with pytest.raises(Exception):
            ClusterConfig(client_count=0)
        with pytest.raises(Exception):
            ClusterConfig(fsync_probability=2.0)
        with pytest.raises(Exception):
            ClusterConfig(max_cache_fraction=0.0)
