"""Partitioned (scale-out) replay must be byte-identical to the
unpartitioned replay of the same grouped population -- the property
that makes sharding replays across workers trustworthy.  Identity here
means SHA-256 digests of exact counter values: every client, every
per-server row, the aggregate, and every snapshot.
"""

import pytest

from repro.common.errors import ConfigError
from repro.fs.cluster import Cluster, merge_cluster_results
from repro.fs.config import ClusterConfig
from repro.fs.faults import FaultConfig
from repro.fs.oracle import ProtocolOracle
from repro.fs.sharding import Placement
from repro.obs.observer import Observation, ObsConfig
from repro.pipeline.scaleout import (
    GROUP_SEED_STRIDE,
    ScaleOutPlan,
    build_group_traces,
    check_id_space,
    merge_obs_timeseries,
    merge_oracle_versions,
    run_partitioned_replay,
    run_unpartitioned_replay,
    shard_partition,
)
from repro.trace.columnar import ColumnarTrace, ColumnarTraceBuilder
from repro.trace.records import OpenRecord, AccessMode
from repro.workload.profiles import STANDARD_PROFILES

SCALE = 0.05
GROUPS = 8


def make_plan(seed: int) -> ScaleOutPlan:
    return ScaleOutPlan(
        profile=STANDARD_PROFILES[0], seed=seed, scale=SCALE, groups=GROUPS
    )


@pytest.fixture(scope="module")
def plan():
    return make_plan(1991)


@pytest.fixture(scope="module")
def traces(plan):
    return build_group_traces(plan)


@pytest.fixture(scope="module")
def reference(plan, traces):
    return run_unpartitioned_replay(plan, traces)


def assert_identical(part, ref):
    assert part.records_replayed == ref.records_replayed
    assert part.duration == ref.duration
    assert sorted(part.final_counters) == sorted(ref.final_counters)
    for client_id, counters in ref.final_counters.items():
        assert part.final_counters[client_id].digest() == counters.digest()
    assert len(part.per_server_counters) == len(ref.per_server_counters)
    for mine, theirs in zip(part.per_server_counters, ref.per_server_counters):
        assert mine.digest() == theirs.digest()
    assert part.server_counters.digest() == ref.server_counters.digest()
    for client_id, snaps in ref.snapshots.items():
        mine = part.snapshots[client_id]
        assert [s.time for s in mine] == [s.time for s in snaps]
        assert [s.counters.digest() for s in mine] == [
            s.counters.digest() for s in snaps
        ]


class TestIdentity:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_sharded_replay_matches_unpartitioned(
        self, plan, traces, reference, shards
    ):
        part = run_partitioned_replay(plan, traces, shards=shards)
        assert_identical(part, reference)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [2718, 31415])
    def test_identity_across_seeds(self, seed):
        other = make_plan(seed)
        other_traces = build_group_traces(other)
        ref = run_unpartitioned_replay(other, other_traces)
        part = run_partitioned_replay(other, other_traces, shards=4)
        assert_identical(part, ref)

    def test_pool_matches_serial(self, plan, traces, reference):
        part = run_partitioned_replay(plan, traces, shards=2, workers=2)
        assert_identical(part, reference)


class TestOracleAndObs:
    def test_oracle_and_obs_merge_match(self, plan, traces):
        owned = shard_partition(plan.groups, 2)
        config = plan.cluster_config()
        duration = traces[0].duration

        ref_oracle = ProtocolOracle(seed=plan.replay_seed)
        ref_obs = Observation(ObsConfig(sample_interval=600.0))
        ref = run_unpartitioned_replay(
            plan, traces, oracle=ref_oracle, obs=ref_obs
        )

        results, oracles, observations = [], [], []
        for groups in owned:
            oracle = ProtocolOracle(seed=plan.replay_seed)
            obs = Observation(ObsConfig(sample_interval=600.0))
            merged = ColumnarTrace.merge(
                [traces[g].columnar for g in groups], ranks=groups
            )
            cluster = Cluster(
                config, seed=plan.replay_seed, oracle=oracle, obs=obs
            )
            results.append(cluster.replay(merged.iter_records(), duration))
            oracles.append(oracle)
            observations.append(obs)

        assert_identical(merge_cluster_results(results, owned), ref)

        assert not ref_oracle.violations
        assert not any(oracle.violations for oracle in oracles)
        assert merge_oracle_versions(oracles, owned, plan.groups) == (
            ref_oracle._versions
        )

        merged_ts = merge_obs_timeseries(
            [obs.timeseries for obs in observations], owned, plan
        )
        assert sorted(merged_ts.machines) == sorted(
            ref_obs.timeseries.machines
        )
        for name, series in ref_obs.timeseries.machines.items():
            assert merged_ts.machines[name].times == series.times
            assert merged_ts.machines[name].rows == series.rows


class TestPlanAndPartition:
    def test_plan_arithmetic(self, plan):
        assert plan.group_scale == SCALE / GROUPS
        assert plan.client_count == GROUPS * plan.clients_per_group
        assert plan.num_servers == GROUPS
        assert plan.group_seed(3) == plan.seed + 3 * GROUP_SEED_STRIDE
        config = plan.cluster_config()
        assert config.client_groups == GROUPS
        assert config.client_count == plan.client_count

    def test_plan_validation(self):
        with pytest.raises(ConfigError):
            ScaleOutPlan(profile=STANDARD_PROFILES[0], groups=0)
        with pytest.raises(ConfigError):
            ScaleOutPlan(profile=STANDARD_PROFILES[0], scale=0.0)
        with pytest.raises(ConfigError):
            ScaleOutPlan(profile=STANDARD_PROFILES[0], servers_per_group=0)

    def test_shard_partition_covers_contiguously(self):
        assert shard_partition(8, 3) == [[0, 1, 2], [3, 4, 5], [6, 7]]
        assert shard_partition(4, 4) == [[0], [1], [2], [3]]
        with pytest.raises(ConfigError):
            shard_partition(4, 5)
        with pytest.raises(ConfigError):
            shard_partition(4, 0)

    def test_id_space_guard(self):
        from repro.fs.paging import EXECUTABLE_FILE_ID_BASE

        builder = ColumnarTraceBuilder()
        builder.append(
            OpenRecord,
            (
                0.0, 0, 1, EXECUTABLE_FILE_ID_BASE // 2, 1, 0, 0,
                AccessMode.READ, 0, False,
            ),
        )
        remapped = builder.seal().remap_group(1, 4, 0)
        with pytest.raises(ConfigError, match="executable id space"):
            check_id_space(remapped, 1)


class TestGroupedConfig:
    def test_client_groups_must_divide_population(self):
        with pytest.raises(ConfigError):
            ClusterConfig(client_count=10, num_servers=4, client_groups=4)
        with pytest.raises(ConfigError):
            ClusterConfig(client_count=8, num_servers=3, client_groups=4)
        with pytest.raises(ConfigError):
            ClusterConfig(client_count=8, num_servers=4, client_groups=0)

    def test_client_groups_forbid_coupling_features(self):
        with pytest.raises(ConfigError):
            ClusterConfig(
                client_count=8, num_servers=4, client_groups=4,
                replication_factor=2,
            )
        with pytest.raises(ConfigError):
            ClusterConfig(
                client_count=8, num_servers=4, client_groups=4,
                scrub_interval=60.0,
            )
        with pytest.raises(ConfigError):
            ClusterConfig(
                client_count=8, num_servers=4, client_groups=4,
                faults=FaultConfig(server_crash_rate=1.0),
            )

    def test_group_placement_confines_to_slice(self):
        base = Placement(8, seed=3)
        for group in range(4):
            view = base.group_view(group, 4)
            lo, hi = group * 2, group * 2 + 2
            for file_id in range(200):
                assert lo <= view.shard_of(file_id) < hi
            assert view.shard_of(-1) == lo
        with pytest.raises(ConfigError):
            base.group_view(0, 3)  # 3 does not divide 8
        with pytest.raises(ConfigError):
            base.group_view(4, 4)
        with pytest.raises(ConfigError):
            base.group_view(0, 4).replicas_of(1, 2)


class TestMergeValidation:
    def test_merge_rejects_bad_coverage(self, plan, traces, reference):
        part = run_partitioned_replay(plan, traces, shards=2)
        owned = shard_partition(plan.groups, 2)
        results = [part, part]
        with pytest.raises(ConfigError):
            merge_cluster_results(results, [owned[0], owned[0]])
        with pytest.raises(ConfigError):
            merge_cluster_results([part], [owned[0]])
        with pytest.raises(ConfigError):
            merge_cluster_results([], [])
