"""Partitioned (scale-out) replay must be byte-identical to the
unpartitioned replay of the same grouped population -- the property
that makes sharding replays across workers trustworthy.  Identity here
means SHA-256 digests of exact counter values: every client, every
per-server row, the aggregate, and every snapshot.

Shards are *owned-only*: each shard cluster constructs just its groups'
machines, and the roster stubs refuse foreign traffic loudly.  The
suite pins that identity holds under per-group faults, replication, and
scrubbing too (``TestGroupedFaults``), plus the plan arithmetic, the
per-group config validation, and the merge error paths.
"""

import pytest

from repro.common.errors import ConfigError, SimulationError
from repro.fs.cluster import Cluster, merge_cluster_results
from repro.fs.config import ClusterConfig
from repro.fs.faults import FaultConfig
from repro.fs.oracle import ProtocolOracle
from repro.fs.sharding import MachineRoster, Placement
from repro.obs.observer import Observation, ObsConfig
from repro.obs.sampler import CounterTimeseries, MachineSeries
from repro.pipeline.scaleout import (
    GROUP_SEED_STRIDE,
    ScaleOutPlan,
    build_group_traces,
    check_id_space,
    merge_obs_timeseries,
    merge_oracle_versions,
    run_partitioned_replay,
    run_unpartitioned_replay,
    shard_partition,
)
from repro.trace.columnar import ColumnarTrace, ColumnarTraceBuilder
from repro.trace.records import OpenRecord, AccessMode
from repro.workload.profiles import STANDARD_PROFILES

SCALE = 0.15  # 6 clients -- an unequal (2, 2, 1, 1) split over 4 groups
GROUPS = 4

#: Per-group fault/replication knobs for the grouped-faults identity
#: suite (and the CI determinism leg, which selects on "grouped_faults").
FAULTY = FaultConfig(
    server_crash_rate=0.5,
    server_downtime=40.0,
    client_crash_rate=0.2,
    partition_rate=0.2,
    partition_duration=20.0,
    disk_corruption_rate=0.4,
    disk_torn_write_rate=0.2,
    disk_lost_write_rate=0.2,
)


def make_plan(seed: int) -> ScaleOutPlan:
    return ScaleOutPlan(
        profile=STANDARD_PROFILES[0], seed=seed, scale=SCALE, groups=GROUPS
    )


def make_faulty_plan(seed: int) -> ScaleOutPlan:
    return ScaleOutPlan(
        profile=STANDARD_PROFILES[0],
        seed=seed,
        scale=SCALE,
        groups=2,
        servers_per_group=2,
        replication_factor=2,
        scrub_interval=3600.0,
        faults=FAULTY,
    )


@pytest.fixture(scope="module")
def plan():
    return make_plan(1991)


@pytest.fixture(scope="module")
def traces(plan):
    return build_group_traces(plan)


@pytest.fixture(scope="module")
def reference(plan, traces):
    return run_unpartitioned_replay(plan, traces)


@pytest.fixture(scope="module")
def faulty_plan():
    return make_faulty_plan(1991)


@pytest.fixture(scope="module")
def faulty_traces(faulty_plan):
    return build_group_traces(faulty_plan)


@pytest.fixture(scope="module")
def faulty_reference(faulty_plan, faulty_traces):
    return run_unpartitioned_replay(faulty_plan, faulty_traces)


def assert_identical(part, ref):
    assert part.records_replayed == ref.records_replayed
    assert part.duration == ref.duration
    assert sorted(part.final_counters) == sorted(ref.final_counters)
    for client_id, counters in ref.final_counters.items():
        assert part.final_counters[client_id].digest() == counters.digest()
    assert len(part.per_server_counters) == len(ref.per_server_counters)
    for mine, theirs in zip(part.per_server_counters, ref.per_server_counters):
        assert mine.digest() == theirs.digest()
    assert part.server_counters.digest() == ref.server_counters.digest()
    for client_id, snaps in ref.snapshots.items():
        mine = part.snapshots[client_id]
        assert [s.time for s in mine] == [s.time for s in snaps]
        assert [s.counters.digest() for s in mine] == [
            s.counters.digest() for s in snaps
        ]


class TestIdentity:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_sharded_replay_matches_unpartitioned(
        self, plan, traces, reference, shards
    ):
        part = run_partitioned_replay(plan, traces, shards=shards)
        assert_identical(part, reference)

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", [2718, 31415])
    def test_identity_across_seeds(self, seed):
        other = make_plan(seed)
        other_traces = build_group_traces(other)
        ref = run_unpartitioned_replay(other, other_traces)
        part = run_partitioned_replay(other, other_traces, shards=4)
        assert_identical(part, ref)

    def test_pool_matches_serial(self, plan, traces, reference):
        part = run_partitioned_replay(plan, traces, shards=2, workers=2)
        assert_identical(part, reference)


class TestGroupedFaults:
    """Identity under per-group faults, replication, and scrubbing --
    the tentpole.  The CI scale-smoke leg runs this class by name."""

    def test_grouped_faults_two_shards_match_unpartitioned(
        self, faulty_plan, faulty_traces, faulty_reference
    ):
        part = run_partitioned_replay(faulty_plan, faulty_traces, shards=2)
        assert_identical(part, faulty_reference)

    def test_grouped_faults_single_shard_matches(
        self, faulty_plan, faulty_traces, faulty_reference
    ):
        part = run_partitioned_replay(faulty_plan, faulty_traces, shards=1)
        assert_identical(part, faulty_reference)

    def test_grouped_faults_oracle_clean(self, faulty_plan, faulty_traces):
        oracle = ProtocolOracle(seed=faulty_plan.replay_seed)
        run_unpartitioned_replay(faulty_plan, faulty_traces, oracle=oracle)
        assert not oracle.violations


class TestOwnedOnlyCluster:
    """Owned-only construction: only the owned groups' machines exist,
    and the roster stubs refuse foreign traffic loudly."""

    CONFIG = ClusterConfig(client_count=4, num_servers=2, client_groups=2)

    def test_owned_rosters_and_foreign_refusal(self):
        cluster = Cluster(self.CONFIG, owned_groups=[0])
        # Global arithmetic is intact: len() is the cluster-wide count.
        assert len(cluster.clients) == 4
        assert len(cluster.servers) == 2
        assert cluster.clients.owned_ids == [0, 1]
        assert cluster.servers.owned_ids == [0]
        assert [c.client_id for c in cluster.clients] == [0, 1]
        with pytest.raises(SimulationError, match="client 2 is not owned"):
            cluster.clients[2]
        with pytest.raises(SimulationError, match="server 1 is not owned"):
            cluster.servers[1]

    def test_owned_groups_validated(self):
        with pytest.raises(ConfigError, match="owned_groups"):
            Cluster(self.CONFIG, owned_groups=[])
        with pytest.raises(ConfigError, match="owned_groups"):
            Cluster(self.CONFIG, owned_groups=[2])
        with pytest.raises(ConfigError, match="owned_groups"):
            Cluster(self.CONFIG, owned_groups=[-1])

    def test_result_carries_owned_ids_and_overheads(self):
        cluster = Cluster(self.CONFIG, owned_groups=[1])
        result = cluster.replay(iter(()), duration=600.0)
        assert result.server_ids == (1,)
        assert sorted(result.final_counters) == [2, 3]
        assert result.construction_seconds > 0.0
        assert result.tick_events > 0

    def test_full_cluster_result_names_all_servers(self):
        cluster = Cluster(self.CONFIG)
        result = cluster.replay(iter(()), duration=600.0)
        assert result.server_ids == (0, 1)


class TestMachineRoster:
    def test_roster_basics(self):
        roster = MachineRoster("server", 4, ["b", "c"], [1, 2])
        assert len(roster) == 4
        assert list(roster) == ["b", "c"]
        assert roster[1] == "b" and roster[2] == "c"
        assert roster.owned_ids == [1, 2]
        with pytest.raises(SimulationError, match="server 0 is not owned"):
            roster[0]
        like = roster.like(["B", "C"], kind="transport")
        assert like[2] == "C"
        assert len(like) == 4
        with pytest.raises(SimulationError, match="transport 3 is not owned"):
            like[3]

    def test_roster_rejects_mismatched_ids(self):
        with pytest.raises(ConfigError):
            MachineRoster("client", 4, ["a", "b"], [1, 1])


class TestOracleAndObs:
    def test_oracle_and_obs_merge_match(self, plan, traces):
        owned = shard_partition(plan.groups, 2)
        config = plan.cluster_config()
        duration = traces[0].duration

        ref_oracle = ProtocolOracle(seed=plan.replay_seed)
        ref_obs = Observation(ObsConfig(sample_interval=600.0))
        ref = run_unpartitioned_replay(
            plan, traces, oracle=ref_oracle, obs=ref_obs
        )

        results, oracles, observations = [], [], []
        for groups in owned:
            oracle = ProtocolOracle(seed=plan.replay_seed)
            obs = Observation(ObsConfig(sample_interval=600.0))
            merged = ColumnarTrace.merge(
                [traces[g].columnar for g in groups], ranks=groups
            )
            cluster = Cluster(
                config, seed=plan.replay_seed, oracle=oracle, obs=obs,
                owned_groups=groups,
            )
            results.append(cluster.replay(merged.iter_records(), duration))
            oracles.append(oracle)
            observations.append(obs)

        assert_identical(merge_cluster_results(results, owned), ref)

        assert not ref_oracle.violations
        assert not any(oracle.violations for oracle in oracles)
        assert merge_oracle_versions(oracles, owned, plan.groups) == (
            ref_oracle.version_map()
        )

        merged_ts = merge_obs_timeseries(
            [obs.timeseries for obs in observations], owned, plan
        )
        assert sorted(merged_ts.machines) == sorted(
            ref_obs.timeseries.machines
        )
        for name, series in ref_obs.timeseries.machines.items():
            assert merged_ts.machines[name].times == series.times
            assert merged_ts.machines[name].rows == series.rows


class _StubOracle:
    """Just enough oracle surface for the merge helpers."""

    def __init__(self, versions, seed=7):
        self._versions = dict(versions)
        self.seed = seed

    def version_map(self):
        return dict(self._versions)


def _series(name):
    return MachineSeries(machine=name, fields=("x",), times=[0.0], rows=[(0,)])


def _timeseries(names):
    ts = CounterTimeseries(600.0)
    for name in names:
        ts.machines[name] = _series(name)
    return ts


class TestMergeHelpers:
    def test_oracle_merge_is_residue_disjoint(self):
        # Group 0 owns even ids, group 1 odd; foreign ids are ignored.
        a = _StubOracle({0: 3, 2: 1, 5: 9})
        b = _StubOracle({1: 4, 5: 9})
        merged = merge_oracle_versions([a, b], [[0], [1]], 2)
        assert merged == {0: 3, 2: 1, 1: 4, 5: 9}

    def test_oracle_merge_keeps_agreeing_sentinels(self):
        a = _StubOracle({-5: 2, 0: 1})
        b = _StubOracle({-5: 2, 1: 1})
        merged = merge_oracle_versions([a, b], [[0], [1]], 2)
        assert merged[-5] == 2

    def test_oracle_merge_rejects_sentinel_disagreement(self):
        a = _StubOracle({-5: 2}, seed=1234)
        b = _StubOracle({-5: 3}, seed=1234)
        with pytest.raises(SimulationError) as excinfo:
            merge_oracle_versions([a, b], [[0], [1]], 2)
        message = str(excinfo.value)
        assert "disagree" in message
        assert "seed 1234" in message

    def test_obs_merge_takes_each_machine_from_its_owner(self, plan):
        owned = [[0, 1], [2, 3]]
        offsets = plan.group_client_offsets  # (0, 2, 4, 5, 6)
        shard0 = _timeseries(
            [f"client-{i}" for i in range(offsets[2])]
            + ["server-0", "server-1"]
        )
        shard1 = _timeseries(
            [f"client-{i}" for i in range(offsets[2], offsets[4])]
            + ["server-2", "server-3"]
        )
        merged = merge_obs_timeseries([shard0, shard1], owned, plan)
        assert sorted(merged.machines) == sorted(
            set(shard0.machines) | set(shard1.machines)
        )

    def test_obs_merge_unowned_machine_is_contextual_error(self, plan):
        # A shard sampled a group-3 client, but no shard owns group 3.
        stray = f"client-{plan.group_client_offsets[3]}"
        shard = _timeseries(["client-0", "client-1", "server-0", stray])
        with pytest.raises(SimulationError, match="belongs to group 3"):
            merge_obs_timeseries([shard], [[0]], plan)


class TestPlanAndPartition:
    def test_plan_arithmetic(self, plan):
        assert plan.group_scale == SCALE / GROUPS
        assert plan.client_count == max(4, round(40 * SCALE))
        assert plan.group_client_counts == (2, 2, 1, 1)
        assert plan.group_client_offsets == (0, 2, 4, 5, 6)
        assert plan.num_servers == GROUPS
        assert plan.group_seed(3) == plan.seed + 3 * GROUP_SEED_STRIDE
        config = plan.cluster_config()
        assert config.client_groups == GROUPS
        assert config.client_count == plan.client_count
        assert config.group_sizes == plan.group_client_counts

    @pytest.mark.parametrize(
        "scale", [0.05, 0.1, 0.15, 0.5, 1.0, 2.5, 10.0, 100.0]
    )
    def test_plan_population_matches_registry_scaling(self, scale):
        """The satellite-2 pin: a plan's total population is exactly the
        registry's ``max(4, round(40 * scale))`` at the *total* scale --
        not a per-group rounding that drifts from it."""
        plan = ScaleOutPlan(
            profile=STANDARD_PROFILES[0], scale=scale,
            groups=min(4, max(1, round(scale / 0.05))),
        )
        expected = max(4, round(40 * scale))
        assert plan.client_count == expected
        counts = plan.group_client_counts
        assert sum(counts) == expected
        assert max(counts) - min(counts) <= 1
        assert plan.group_client_offsets[-1] == expected
        assert plan.cluster_config().client_count == expected

    def test_plan_validation(self):
        with pytest.raises(ConfigError):
            ScaleOutPlan(profile=STANDARD_PROFILES[0], groups=0)
        with pytest.raises(ConfigError):
            ScaleOutPlan(profile=STANDARD_PROFILES[0], scale=0.0)
        with pytest.raises(ConfigError):
            ScaleOutPlan(profile=STANDARD_PROFILES[0], servers_per_group=0)
        # 8 groups need 8 clients; scale 0.05 fields only 4.
        with pytest.raises(ConfigError, match="every group needs"):
            ScaleOutPlan(profile=STANDARD_PROFILES[0], scale=0.05, groups=8)

    def test_shard_partition_covers_contiguously(self):
        assert shard_partition(8, 3) == [[0, 1, 2], [3, 4, 5], [6, 7]]
        assert shard_partition(4, 3) == [[0, 1], [2], [3]]
        assert shard_partition(4, 4) == [[0], [1], [2], [3]]
        assert shard_partition(1, 1) == [[0]]
        assert shard_partition(5, 2) == [[0, 1, 2], [3, 4]]

    def test_shard_partition_rejects_bad_counts(self):
        with pytest.raises(ConfigError):
            shard_partition(4, 5)
        with pytest.raises(ConfigError):
            shard_partition(4, 0)
        with pytest.raises(ConfigError):
            shard_partition(4, -1)

    def test_id_space_guard(self):
        from repro.fs.paging import EXECUTABLE_FILE_ID_BASE

        builder = ColumnarTraceBuilder()
        builder.append(
            OpenRecord,
            (
                0.0, 0, 1, EXECUTABLE_FILE_ID_BASE // 2, 1, 0, 0,
                AccessMode.READ, 0, False,
            ),
        )
        remapped = builder.seal().remap_group(1, 4, 0)
        with pytest.raises(ConfigError, match="executable id space"):
            check_id_space(remapped, 1)


class TestGroupedConfig:
    """Satellite 3: every grouped-config validation message."""

    def test_client_groups_must_be_positive(self):
        with pytest.raises(ConfigError, match="client_groups must be >= 1"):
            ClusterConfig(client_count=8, num_servers=4, client_groups=0)

    def test_group_sizes_require_grouping(self):
        with pytest.raises(
            ConfigError, match="requires client_groups > 1"
        ):
            ClusterConfig(client_count=8, client_group_sizes=(4, 4))

    def test_group_sizes_length_must_match(self):
        with pytest.raises(ConfigError, match="3 entries for client_groups=2"):
            ClusterConfig(
                client_count=8, num_servers=4, client_groups=2,
                client_group_sizes=(3, 3, 2),
            )

    def test_group_sizes_must_be_positive(self):
        with pytest.raises(ConfigError, match="at least one client"):
            ClusterConfig(
                client_count=8, num_servers=4, client_groups=2,
                client_group_sizes=(8, 0),
            )

    def test_group_sizes_must_sum_to_population(self):
        with pytest.raises(ConfigError, match="sum to 7, not client_count=8"):
            ClusterConfig(
                client_count=8, num_servers=4, client_groups=2,
                client_group_sizes=(4, 3),
            )

    def test_equal_split_must_divide_population(self):
        with pytest.raises(
            ConfigError, match="evenly divide client_count=10"
        ):
            ClusterConfig(client_count=10, num_servers=4, client_groups=4)

    def test_groups_must_divide_servers(self):
        with pytest.raises(ConfigError, match="evenly divide num_servers=3"):
            ClusterConfig(client_count=8, num_servers=3, client_groups=4)

    def test_replication_must_fit_group_slice(self):
        with pytest.raises(
            ConfigError, match="does not fit a group's server slice"
        ):
            ClusterConfig(
                client_count=8, num_servers=4, client_groups=4,
                replication_factor=2,
            )

    def test_grouped_faults_replication_scrub_now_compose(self):
        """The old blanket client_groups > 1 prohibitions are gone:
        per-group replication, scrubbing, and fault timelines are
        legal so long as the replica chain fits the slice."""
        config = ClusterConfig(
            client_count=8, num_servers=8, client_groups=4,
            replication_factor=2, scrub_interval=60.0,
            faults=FaultConfig(server_crash_rate=1.0),
        )
        assert config.group_sizes == (2, 2, 2, 2)
        assert config.group_client_offsets == (0, 2, 4, 6, 8)

    def test_unequal_split_offsets(self):
        config = ClusterConfig(
            client_count=6, num_servers=4, client_groups=4,
            client_group_sizes=(2, 2, 1, 1),
        )
        assert config.group_sizes == (2, 2, 1, 1)
        assert config.group_client_offsets == (0, 2, 4, 5, 6)


class TestGroupPlacement:
    def test_group_placement_confines_to_slice(self):
        base = Placement(8, seed=3)
        for group in range(4):
            view = base.group_view(group, 4)
            lo, hi = group * 2, group * 2 + 2
            for file_id in range(200):
                assert lo <= view.shard_of(file_id) < hi
            assert view.shard_of(-1) == lo
        with pytest.raises(ConfigError):
            base.group_view(0, 3)  # 3 does not divide 8
        with pytest.raises(ConfigError):
            base.group_view(4, 4)

    def test_group_replicas_confined_to_slice(self):
        base = Placement(8, seed=3)
        for group in range(4):
            view = base.group_view(group, 4)
            assert view.chain_width == 2
            lo, hi = group * 2, group * 2 + 2
            for file_id in range(50):
                chain = view.replicas_of(file_id, 2)
                assert chain[0] == view.shard_of(file_id)
                assert len(set(chain)) == 2
                assert all(lo <= server < hi for server in chain)
            assert view.replicas_of(-1, 2) == (lo, lo + 1)
        with pytest.raises(ConfigError, match="server slice"):
            base.group_view(0, 4).replicas_of(1, 3)  # slice holds only 2


class TestMergeValidation:
    def test_merge_rejects_bad_coverage(self, plan, traces, reference):
        part = run_partitioned_replay(plan, traces, shards=2)
        owned = shard_partition(plan.groups, 2)
        results = [part, part]
        with pytest.raises(ConfigError):
            merge_cluster_results(results, [owned[0], owned[0]])
        with pytest.raises(ConfigError):
            merge_cluster_results([part], [owned[0]])
        with pytest.raises(ConfigError):
            merge_cluster_results([], [])
