"""Sharded-cluster tests: placement, fault isolation, and accounting.

The paper's cluster had four file servers; these tests cover the shard
dimension end to end:

* the seeded placement hash is deterministic, covers every shard, and
  pins files with no server affinity (``file_id < 0``) to server 0;
* overlapping server-crash faults book ``crashes`` and
  ``downtime_seconds`` once, from real timestamps (the Table R bug);
* write-sharing bookkeeping is identical no matter what order clients
  registered in;
* crashing one shard leaves every other shard's counters byte-identical
  to a fault-free replay (one shard down must not stall the others);
* the single-server fast path reports its one shard as the aggregate,
  and the per-server report sections render one column per server.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.sharded import (
    render_table1_per_server,
    render_table2_per_server,
    render_table7_per_server,
    shard_records,
)
from repro.common.errors import ConfigError
from repro.common.units import MB
from repro.fs import (
    ClusterConfig,
    FaultEvent,
    FaultKind,
    FaultSchedule,
    Placement,
    Server,
    ServerCounters,
    run_cluster_on_trace,
)

SHARD_SEEDS = (11, 23, 37, 41, 53)


class TestPlacement:
    def test_deterministic_across_instances(self):
        one = Placement(4, seed=7)
        two = Placement(4, seed=7)
        assert [one.shard_of(i) for i in range(1000)] == [
            two.shard_of(i) for i in range(1000)
        ]

    def test_covers_every_shard_roughly_evenly(self):
        placement = Placement(4)
        counts = [0, 0, 0, 0]
        for file_id in range(4000):
            counts[placement.shard_of(file_id)] += 1
        assert min(counts) > 0
        # A seeded 64-bit mix should not be grossly lopsided.
        assert max(counts) < 2 * min(counts)

    def test_single_server_is_identity(self):
        placement = Placement(1)
        assert all(placement.shard_of(i) == 0 for i in range(-5, 100))

    def test_unplaced_files_land_on_server_zero(self):
        assert Placement(4).shard_of(-1) == 0

    def test_seed_changes_the_layout(self):
        base = [Placement(4, seed=0).shard_of(i) for i in range(256)]
        other = [Placement(4, seed=1).shard_of(i) for i in range(256)]
        assert base != other

    def test_rejects_empty_cluster(self):
        with pytest.raises(ConfigError):
            Placement(0)


class TestReplicaPlacement:
    """Property suite for ``Placement.replicas_of`` (the replication
    layer's placement function)."""

    @given(
        file_id=st.integers(min_value=0, max_value=2**62),
        num_servers=st.integers(min_value=1, max_value=8),
        r=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_r_distinct_servers_primary_first(
        self, file_id, num_servers, r, seed
    ):
        r = min(r, num_servers)
        placement = Placement(num_servers, seed=seed)
        replicas = placement.replicas_of(file_id, r)
        assert len(replicas) == r
        assert len(set(replicas)) == r, "replicas must be distinct servers"
        assert replicas[0] == placement.shard_of(file_id)
        assert all(0 <= s < num_servers for s in replicas)

    @given(
        file_id=st.integers(min_value=0, max_value=2**62),
        num_servers=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_stable_across_instances_and_prefix_stable(
        self, file_id, num_servers, seed
    ):
        """Two placements with the same seed agree, and growing ``r``
        only appends -- a file's first k replicas never move when the
        replication factor changes (re-replication targets come from
        the same chain)."""
        one = Placement(num_servers, seed=seed)
        two = Placement(num_servers, seed=seed)
        full = one.replicas_of(file_id, num_servers)
        assert sorted(full) == list(range(num_servers))
        for r in range(1, num_servers + 1):
            chain = two.replicas_of(file_id, r)
            assert chain == full[:r]

    @given(
        num_servers=st.integers(min_value=2, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_replica_load_within_2x_of_mean(self, num_servers, seed):
        r = min(2, num_servers)
        placement = Placement(num_servers, seed=seed)
        counts = [0] * num_servers
        files = 2000
        for file_id in range(files):
            for server_id in placement.replicas_of(file_id, r):
                counts[server_id] += 1
        mean = files * r / num_servers
        assert max(counts) < 2 * mean
        assert min(counts) > mean / 2

    def test_unplaced_files_take_the_first_r_servers(self):
        assert Placement(4).replicas_of(-1, 3) == (0, 1, 2)

    def test_rejects_out_of_range_replica_counts(self):
        placement = Placement(4)
        for r in (0, 5):
            with pytest.raises(ConfigError):
                placement.replicas_of(7, r)


def _crash(time: float, duration: float, target: int = -1) -> FaultEvent:
    return FaultEvent(
        time=time, kind=FaultKind.SERVER_CRASH, target=target,
        duration=duration,
    )


class TestOverlappingCrashAccounting:
    """Regression: overlapping crash faults used to double-book both
    ``crashes`` and (predicted) ``downtime_seconds``."""

    def test_contained_overlap_books_one_crash_and_true_downtime(
        self, small_trace
    ):
        # Second crash lands while the server is already down and ends
        # inside the first outage: one crash, 50 seconds of downtime.
        schedule = FaultSchedule([_crash(10.0, 50.0), _crash(30.0, 10.0)])
        result = run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=4), seed=3, fault_schedule=schedule,
        )
        assert result.server_counters.crashes == 1
        assert result.server_counters.downtime_seconds == pytest.approx(50.0)

    def test_extending_overlap_books_the_real_outage_span(self, small_trace):
        # Second crash extends the outage: still one crash, and the
        # booked downtime runs to the *later* recovery (10.0 .. 130.0).
        schedule = FaultSchedule([_crash(10.0, 50.0), _crash(30.0, 100.0)])
        result = run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=4), seed=3, fault_schedule=schedule,
        )
        assert result.server_counters.crashes == 1
        assert result.server_counters.downtime_seconds == pytest.approx(120.0)


class _StubClient:
    """The minimal client surface the server's open/close path touches."""

    def __init__(self, client_id: int) -> None:
        self.client_id = client_id

    def reachable(self, now: float) -> bool:
        return True

    def has_dirty_data(self, file_id: int) -> bool:
        return False

    def receive_recall(self, now: float, file_id: int) -> None:
        pass


def _drive_write_sharing(order: list[int]) -> ServerCounters:
    server = Server(cache_bytes=1 << 20, block_size=4096)
    for client_id in order:
        server.register_client(_StubClient(client_id))
    # Three concurrent writers, closed and reopened out of order.
    for client_id in (2, 0, 1):
        server.open_file(0.0, file_id=7, client_id=client_id, will_write=True)
    for client_id in (1, 2, 0):
        server.close_file(1.0, file_id=7, client_id=client_id, wrote=True)
    server.open_file(2.0, file_id=9, client_id=1, will_write=False)
    server.open_file(2.0, file_id=9, client_id=0, will_write=True)
    return server.counters


def test_write_sharing_counters_ignore_registration_order():
    base = _drive_write_sharing([0, 1, 2])
    assert base.concurrent_write_sharing_opens > 0
    assert base.cache_disables > 0
    for order in ([2, 1, 0], [1, 0, 2], [2, 0, 1]):
        assert _drive_write_sharing(order) == base


class TestShardIsolation:
    @pytest.mark.parametrize("seed", SHARD_SEEDS)
    def test_crashed_shard_does_not_perturb_the_others(
        self, seed, small_trace
    ):
        """One shard down mid-trace: the other shards' counters must be
        byte-identical to a fault-free replay of the same seed.

        The client block cache is shared across shards, so eviction
        pressure is the one legitimate coupling between them (blocks of
        a down shard linger dirty and shift the LRU victims).  The
        replay runs with caches large enough that nothing is evicted,
        so any remaining divergence on an up shard is a protocol-level
        isolation bug, which is what this test pins.
        """
        config = ClusterConfig(
            client_count=4, num_servers=3, client_memory=512 * MB
        )
        outage_start = small_trace.duration * 0.3
        outage = small_trace.duration * 0.1
        faulted = run_cluster_on_trace(
            small_trace.records, small_trace.duration, config, seed=seed,
            fault_schedule=FaultSchedule(
                [_crash(outage_start, outage, target=1)]
            ),
        )
        clean = run_cluster_on_trace(
            small_trace.records, small_trace.duration, config, seed=seed,
            fault_schedule=FaultSchedule([]),
        )
        assert faulted.per_server_counters[1].crashes == 1
        assert faulted.per_server_counters[1].downtime_seconds == (
            pytest.approx(outage)
        )
        for server_id in (0, 2):
            assert (
                faulted.per_server_counters[server_id]
                == clean.per_server_counters[server_id]
            ), f"shard {server_id} perturbed by shard 1's crash"

    def test_sharded_replay_is_deterministic(self, small_trace):
        config = ClusterConfig(client_count=4, num_servers=4)
        one = run_cluster_on_trace(
            small_trace.records, small_trace.duration, config, seed=17
        )
        two = run_cluster_on_trace(
            small_trace.records, small_trace.duration, config, seed=17
        )
        assert one.final_counters == two.final_counters
        assert one.per_server_counters == two.per_server_counters
        assert one.snapshots == two.snapshots


class TestPerServerAccounting:
    def test_single_server_shard_is_the_aggregate(self, small_trace):
        result = run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=4), seed=5,
        )
        assert len(result.per_server_counters) == 1
        assert result.per_server_counters[0] == result.server_counters

    def test_aggregate_is_the_shard_sum(self, small_trace):
        result = run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=4, num_servers=3), seed=5,
        )
        assert len(result.per_server_counters) == 3
        total = ServerCounters.aggregate(result.per_server_counters)
        assert total == result.server_counters
        # The shards genuinely split the load.
        active = [
            c for c in result.per_server_counters if c.rpc_count > 0
        ]
        assert len(active) > 1


@pytest.mark.obs
def test_observed_sharded_replay_integrates_per_server(small_trace):
    """The obs sampler keeps one timeseries per server shard, and each
    integrates exactly to that shard's end-of-run counters."""
    from repro.obs import Observation, ObsConfig
    from repro.obs.sampler import verify_integration

    obs = Observation(ObsConfig(sample_interval=120.0))
    result = run_cluster_on_trace(
        small_trace.records, small_trace.duration,
        ClusterConfig(client_count=4, num_servers=3), seed=13, obs=obs,
    )
    names = {s.machine for s in obs.timeseries.server_series()}
    assert names == {"server-0", "server-1", "server-2"}
    problems = verify_integration(
        obs.timeseries, result.final_counters, result.server_counters,
        per_server_counters=result.per_server_counters,
    )
    assert problems == []


def test_replay_codec_round_trips_per_server_counters(small_trace):
    from repro.pipeline.codec import decode_artifact, encode_artifact

    result = run_cluster_on_trace(
        small_trace.records, small_trace.duration,
        ClusterConfig(client_count=4, num_servers=3), seed=5,
    )
    decoded = decode_artifact(encode_artifact(result))
    assert decoded.per_server_counters == result.per_server_counters
    assert decoded.server_counters == result.server_counters
    assert decoded.final_counters == result.final_counters


class TestPerServerRendering:
    def test_tables_render_one_column_per_server(self, small_trace):
        placement = Placement(4)
        table1 = render_table1_per_server([small_trace], placement)
        table2 = render_table2_per_server([small_trace], placement)
        result = run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=4, num_servers=4), seed=5,
        )
        table7 = render_table7_per_server([result])
        for text in (table1, table2, table7):
            for server_id in range(4):
                assert f"server {server_id}" in text

    def test_shard_records_partitions_without_loss(self, small_trace):
        placement = Placement(4)
        shards = shard_records(small_trace.records, placement)
        assert sum(len(shard) for shard in shards) == len(
            small_trace.records
        )
        for server_id, records in enumerate(shards):
            for record in records[:200]:
                file_id = getattr(record, "file_id", -1)
                assert placement.shard_of(file_id) == server_id
