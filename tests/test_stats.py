"""Unit and property tests for repro.common.stats."""

import math
import statistics

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.stats import (
    Histogram,
    MinMax,
    RunningStat,
    geometric_edges,
    percentile,
)


class TestRunningStat:
    def test_empty(self):
        stat = RunningStat()
        assert stat.count == 0
        assert stat.mean == 0.0
        assert stat.stddev == 0.0
        assert stat.total == 0.0

    def test_single_value(self):
        stat = RunningStat()
        stat.add(5.0)
        assert stat.mean == 5.0
        assert stat.variance == 0.0
        assert stat.minimum == 5.0 == stat.maximum

    def test_matches_statistics_module(self):
        values = [1.5, 2.0, -3.0, 8.25, 0.0, 4.5]
        stat = RunningStat()
        stat.extend(values)
        assert stat.mean == pytest.approx(statistics.fmean(values))
        assert stat.stddev == pytest.approx(statistics.pstdev(values))

    def test_weighted_add(self):
        stat = RunningStat()
        stat.add(2.0, weight=3)
        stat.add(4.0, weight=1)
        assert stat.count == 4
        assert stat.mean == pytest.approx(2.5)

    def test_zero_weight_ignored_in_count(self):
        stat = RunningStat()
        stat.add(2.0, weight=0)
        assert stat.count == 0

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            RunningStat().add(1.0, weight=-1)

    def test_total(self):
        stat = RunningStat()
        stat.extend([1.0, 2.0, 3.0])
        assert stat.total == pytest.approx(6.0)

    def test_merge_matches_combined(self):
        a_values = [1.0, 2.0, 3.0]
        b_values = [10.0, 20.0]
        a, b = RunningStat(), RunningStat()
        a.extend(a_values)
        b.extend(b_values)
        a.merge(b)
        combined = a_values + b_values
        assert a.count == len(combined)
        assert a.mean == pytest.approx(statistics.fmean(combined))
        assert a.stddev == pytest.approx(statistics.pstdev(combined))
        assert a.minimum == min(combined)
        assert a.maximum == max(combined)

    def test_merge_into_empty(self):
        a, b = RunningStat(), RunningStat()
        b.extend([1.0, 2.0])
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(1.5)

    def test_merge_empty_is_noop(self):
        a, b = RunningStat(), RunningStat()
        a.extend([1.0, 2.0])
        a.merge(b)
        assert a.count == 2


class TestMinMax:
    def test_empty(self):
        band = MinMax()
        assert band.empty
        with pytest.raises(ValueError):
            band.as_tuple()

    def test_tracks_extremes(self):
        band = MinMax()
        for value in [3.0, -1.0, 7.0]:
            band.add(value)
        assert band.as_tuple() == (-1.0, 7.0)


class TestHistogram:
    def test_requires_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=[])

    def test_requires_increasing_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=[1.0, 1.0])

    def test_bucket_assignment(self):
        hist = Histogram(edges=[10.0, 100.0])
        hist.add(5.0)
        hist.add(10.0)  # boundary goes to the lower bucket
        hist.add(50.0)
        hist.add(1000.0)  # overflow
        assert hist.counts == [2.0, 1.0, 1.0]

    def test_weighted_mass(self):
        hist = Histogram(edges=[10.0])
        hist.add(5.0, weight=2.5)
        assert hist.total == 2.5

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            Histogram(edges=[1.0]).add(0.5, weight=-1.0)

    def test_fraction_at_or_below(self):
        hist = Histogram(edges=[10.0, 100.0])
        hist.add(5.0)
        hist.add(50.0)
        assert hist.fraction_at_or_below(10.0) == pytest.approx(0.5)
        assert hist.fraction_at_or_below(100.0) == pytest.approx(1.0)

    def test_fraction_of_empty_histogram(self):
        hist = Histogram(edges=[1.0])
        assert hist.fraction_at_or_below(1.0) == 0.0

    def test_buckets_iteration(self):
        hist = Histogram(edges=[1.0, 2.0])
        buckets = list(hist.buckets())
        assert len(buckets) == 3
        assert buckets[-1][0] == math.inf

    def test_counts_length_validation(self):
        with pytest.raises(ValueError):
            Histogram(edges=[1.0], counts=[0.0])


class TestGeometricEdges:
    def test_spans_range(self):
        edges = geometric_edges(1.0, 1000.0, per_decade=1)
        assert edges[0] == 1.0
        assert edges[-1] >= 1000.0

    def test_per_decade_resolution(self):
        edges = geometric_edges(1.0, 10.0, per_decade=4)
        # Consecutive edges are a factor of 10^(1/4) apart.
        for a, b in zip(edges, edges[1:]):
            assert b / a == pytest.approx(10 ** 0.25)
        assert 5 <= len(edges) <= 6  # floating-point may add one edge

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            geometric_edges(10.0, 1.0)
        with pytest.raises(ValueError):
            geometric_edges(0.0, 1.0)
        with pytest.raises(ValueError):
            geometric_edges(1.0, 10.0, per_decade=0)


class TestPercentile:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_out_of_range_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 0.5) == 5.0

    def test_endpoints(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 1.0) == 3.0


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_running_stat_matches_reference(values):
    stat = RunningStat()
    stat.extend(values)
    assert stat.mean == pytest.approx(statistics.fmean(values), abs=1e-6, rel=1e-6)
    assert stat.stddev == pytest.approx(
        statistics.pstdev(values), abs=1e-6, rel=1e-6
    )


@given(
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
    st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50),
)
@settings(max_examples=50, deadline=None)
def test_merge_equals_extend(first, second):
    merged = RunningStat()
    merged.extend(first)
    other = RunningStat()
    other.extend(second)
    merged.merge(other)
    reference = RunningStat()
    reference.extend(first + second)
    assert merged.count == reference.count
    assert merged.mean == pytest.approx(reference.mean, abs=1e-6, rel=1e-6)
    assert merged.variance == pytest.approx(reference.variance, abs=1e-4, rel=1e-4)
