"""Unit tests for the trace record vocabulary and serialization."""

import pytest

from repro.common.errors import TraceError
from repro.trace.records import (
    AccessMode,
    CloseRecord,
    CreateRecord,
    DeleteRecord,
    DirectoryReadRecord,
    OpenRecord,
    ReadRunRecord,
    RepositionRecord,
    SharedReadRecord,
    SharedWriteRecord,
    TraceRecord,
    TruncateRecord,
    WriteRunRecord,
)

ALL_RECORDS = [
    OpenRecord(
        time=1.0, server_id=0, open_id=1, file_id=2, user_id=3,
        process_id=4, client_id=5, mode=AccessMode.READ_WRITE,
        size_at_open=100, migrated=True,
    ),
    CloseRecord(
        time=2.0, server_id=1, open_id=1, file_id=2, user_id=3,
        client_id=5, size_at_close=200, bytes_read=50, bytes_written=150,
    ),
    ReadRunRecord(
        time=1.5, server_id=0, open_id=1, file_id=2, user_id=3,
        client_id=5, offset=0, length=50,
    ),
    WriteRunRecord(
        time=1.7, server_id=0, open_id=1, file_id=2, user_id=3,
        client_id=5, offset=50, length=150, migrated=True,
    ),
    RepositionRecord(
        time=1.6, server_id=0, open_id=1, file_id=2, user_id=3,
        client_id=5, offset_before=50, offset_after=0,
    ),
    CreateRecord(time=0.5, server_id=2, file_id=2, user_id=3, client_id=5),
    DeleteRecord(
        time=9.0, server_id=2, file_id=2, user_id=3, client_id=5,
        size=200, oldest_byte_time=1.0, newest_byte_time=2.0,
    ),
    TruncateRecord(
        time=8.0, server_id=2, file_id=2, user_id=3, client_id=5, size=10,
    ),
    SharedReadRecord(
        time=3.0, server_id=0, file_id=2, user_id=3, client_id=5,
        offset=0, length=64,
    ),
    SharedWriteRecord(
        time=3.1, server_id=0, file_id=2, user_id=3, client_id=5,
        offset=64, length=32, migrated=True,
    ),
    DirectoryReadRecord(
        time=4.0, server_id=0, file_id=-1, user_id=3, client_id=5, length=512,
    ),
]


class TestSerialization:
    @pytest.mark.parametrize("record", ALL_RECORDS, ids=lambda r: r.kind)
    def test_roundtrip(self, record):
        data = record.to_dict()
        rebuilt = TraceRecord.from_dict(data)
        assert rebuilt == record

    @pytest.mark.parametrize("record", ALL_RECORDS, ids=lambda r: r.kind)
    def test_dict_has_kind(self, record):
        assert record.to_dict()["kind"] == record.kind

    def test_mode_serializes_as_string(self):
        data = ALL_RECORDS[0].to_dict()
        assert data["mode"] == "read_write"

    def test_missing_kind_raises(self):
        with pytest.raises(TraceError):
            TraceRecord.from_dict({"time": 1.0})

    def test_unknown_kind_raises(self):
        with pytest.raises(TraceError):
            TraceRecord.from_dict({"kind": "bogus", "time": 1.0})

    def test_bad_fields_raise(self):
        with pytest.raises(TraceError):
            TraceRecord.from_dict({"kind": "open", "nonsense": 1})

    def test_registry_covers_all_kinds(self):
        kinds = {record.kind for record in ALL_RECORDS}
        assert kinds <= set(TraceRecord._registry)

    def test_duplicate_kind_registration_raises(self):
        with pytest.raises(TraceError):
            # Attempting to define another record with an existing kind.
            from dataclasses import dataclass
            from typing import ClassVar

            @dataclass(frozen=True)
            class Impostor(TraceRecord):  # noqa: F841
                kind: ClassVar[str] = "open"


class TestRecordProperties:
    def test_records_are_frozen(self):
        with pytest.raises(Exception):
            ALL_RECORDS[0].time = 99.0  # type: ignore[misc]

    def test_access_mode_values(self):
        assert {m.value for m in AccessMode} == {"read", "write", "read_write"}
