"""Tests for the observability layer (repro.obs).

The two contracts under test:

* **inert by default** -- with no observation attached, nothing changes;
  with one attached, the replay's results are *identical* to an
  unobserved run (the layer reads, it never steers);
* **integration exactness** -- summing any sampled counter's deltas over
  the whole run reproduces the end-of-run aggregate exactly, for every
  counter on every machine.
"""

from __future__ import annotations

import json

import pytest

from repro.common.errors import SimulationError
from repro.fs import ClusterConfig, FaultConfig, ProtocolOracle
from repro.fs.cluster import run_cluster_on_trace
from repro.fs.faults import SERVER_TARGET, FaultEvent, FaultKind, FaultSchedule
from repro.obs import (
    CounterTimeseries,
    MachineSeries,
    ObsConfig,
    Observation,
    TraceRecorder,
    validate_chrome_trace,
    verify_integration,
)

pytestmark = pytest.mark.obs


def observed_replay(trace, config=None, seed=9, oracle=None,
                    fault_schedule=None, sample_interval=60.0,
                    max_trace_events=1_000_000):
    obs = Observation(ObsConfig(
        sample_interval=sample_interval, max_trace_events=max_trace_events,
    ))
    result = run_cluster_on_trace(
        trace.records, trace.duration,
        config or ClusterConfig(client_count=4),
        seed=seed, oracle=oracle, fault_schedule=fault_schedule, obs=obs,
    )
    return obs, result


@pytest.fixture(scope="module")
def observed(small_trace):
    """One observed replay, identical in inputs to ``cluster_result``."""
    return observed_replay(small_trace)


class TestInertness:
    def test_observed_run_has_identical_results(
        self, observed, cluster_result
    ):
        """Same trace, config, seed as the (unobserved) ``cluster_result``
        fixture: every counter on every machine must match exactly."""
        obs, result = observed
        assert result.final_counters == cluster_result.final_counters
        assert result.server_counters == cluster_result.server_counters
        assert result.records_replayed == cluster_result.records_replayed
        assert result.snapshots == cluster_result.snapshots

    def test_double_attach_refused(self, small_trace):
        obs = Observation()
        run_cluster_on_trace(
            small_trace.records, small_trace.duration,
            ClusterConfig(client_count=2), seed=3, obs=obs,
        )
        with pytest.raises(RuntimeError, match="already attached"):
            run_cluster_on_trace(
                small_trace.records, small_trace.duration,
                ClusterConfig(client_count=2), seed=3, obs=obs,
            )


class TestIntegration:
    def test_timeseries_integrates_to_final_counters(self, observed):
        """The acceptance check: sum-of-deltas == end-of-run aggregate
        for every ClientCounters and ServerCounters field."""
        obs, result = observed
        problems = verify_integration(
            obs.timeseries, result.final_counters, result.server_counters
        )
        assert problems == []

    def test_sampling_cadence(self, observed, small_trace):
        obs, result = observed
        series = obs.timeseries.series("server")
        # Baseline at t=0, one per interval, plus the closing sample.
        assert series.times[0] == 0.0
        assert series.times[-1] == pytest.approx(small_trace.duration)
        assert len(series) >= 2
        assert all(b >= a for a, b in zip(series.times, series.times[1:]))

    def test_deltas_and_rates(self):
        series = MachineSeries(
            machine="client-0", fields=("x",),
            times=[0.0, 10.0, 20.0], rows=[(0,), (4,), (10,)],
        )
        assert series.column("x") == [0, 4, 10]
        assert series.deltas("x") == [4, 6]
        assert series.rates("x") == [0.4, 0.6]
        assert series.integrate("x") == 10
        with pytest.raises(KeyError):
            series.column("nope")

    def test_integrate_empty_series_raises(self):
        series = MachineSeries(
            machine="server", fields=("x",), times=[], rows=[],
        )
        with pytest.raises(SimulationError):
            series.integrate("x")


class TestTraceExport:
    def test_trace_validates_against_schema(self, observed):
        obs, _ = observed
        trace = obs.tracer.to_chrome_trace()
        assert validate_chrome_trace(trace) == []

    def test_trace_names_every_machine(self, observed):
        obs, _ = observed
        trace = obs.tracer.to_chrome_trace()
        names = {
            row["args"]["name"]
            for row in trace["traceEvents"] if row["ph"] == "M"
        }
        assert names == {
            "server", "client-0", "client-1", "client-2", "client-3",
        }

    def test_trace_round_trips_through_json(self, observed, tmp_path):
        obs, _ = observed
        path = tmp_path / "trace.json"
        obs.write_trace(path)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert loaded["otherData"]["events_dropped"] == 0

    def test_event_cap_counts_drops(self):
        recorder = TraceRecorder(max_events=5)
        for i in range(12):
            recorder.instant(float(i), 0, "test", f"event-{i}")
        assert len(recorder) == 5
        assert recorder.dropped == 7
        exported = recorder.to_chrome_trace()
        assert exported["otherData"]["events_recorded"] == 5
        assert exported["otherData"]["events_dropped"] == 7

    def test_capped_observed_run_stays_inert(self, small_trace,
                                             cluster_result):
        """Hitting the event cap changes the trace, never the replay."""
        obs, result = observed_replay(small_trace, max_trace_events=10)
        assert obs.tracer.dropped > 0
        assert result.final_counters == cluster_result.final_counters

    def test_validator_flags_bad_rows(self):
        bad = {"traceEvents": [
            {"name": 5, "ph": "i", "ts": 0, "pid": 0, "tid": 0},
            {"name": "x", "ph": "?", "ts": 0, "pid": 0, "tid": 0},
            {"name": "x", "ph": "X", "ts": 0, "pid": 0, "tid": 0},
        ]}
        problems = validate_chrome_trace(bad)
        assert len(problems) == 3
        assert validate_chrome_trace({"traceEvents": None}) != []


class TestLatencies:
    def test_lossy_run_populates_histograms(self, small_trace):
        config = ClusterConfig(
            client_count=4,
            faults=FaultConfig(
                message_loss_rate=0.05,
                message_delay_rate=0.3,
                message_delay_mean=0.02,
            ),
        )
        oracle = ProtocolOracle(seed=77, raise_on_violation=False)
        obs, result = observed_replay(
            small_trace, config=config, seed=77, oracle=oracle,
        )
        stats = obs.latencies.stats
        assert stats["rpc_round_trip_seconds"].count > 0
        assert stats["writeback_age_seconds"].count > 0
        # The oracle's checks were mirrored into the observation.
        assert obs.oracle_checks.get("execute", 0) > 0
        assert obs.oracle_checks.get("final", 0) > 0
        assert obs.oracle_violations == 0
        # Integration exactness holds on lossy runs too.
        assert verify_integration(
            obs.timeseries, result.final_counters, result.server_counters
        ) == []
        payload = obs.bench_payload()
        assert payload["schema"] == "repro-obs-bench-v1"
        assert (
            payload["latency_histograms"]["rpc_round_trip_seconds"]["count"]
            > 0
        )

    def test_fault_schedule_shows_up_in_trace(self, small_trace):
        # The trace is bursty at this small scale: anchor the outage at
        # the median record so client ops land inside it and stall.
        times = sorted(record.time for record in small_trace.records)
        crash_at = times[len(times) // 2] - 1.0
        outage = small_trace.duration * 0.02
        schedule = FaultSchedule(events=[
            FaultEvent(crash_at, FaultKind.SERVER_CRASH, SERVER_TARGET, outage),
        ])
        obs, result = observed_replay(
            small_trace, fault_schedule=schedule, seed=11,
        )
        names = {event.name for event in obs.tracer.events}
        assert "armed:server_crash" in names
        assert "outage:server_crash" in names
        assert "recovered:server_crash" in names
        assert obs.latencies.stats["recovery_stall_seconds"].count > 0

    def test_bench_file_is_json(self, observed, tmp_path):
        obs, _ = observed
        path = tmp_path / "BENCH_obs.json"
        obs.write_bench(path)
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro-obs-bench-v1"
        assert payload["trace_events_dropped"] == 0
        assert payload["machines"] == [
            "client-0", "client-1", "client-2", "client-3", "server",
        ]

    def test_render_summary_mentions_everything(self, observed):
        obs, _ = observed
        text = obs.render_summary()
        assert "counter timeseries" in text
        assert "trace events" in text
        assert "Latency histograms" in text


class TestCodecRoundTrip:
    def test_timeseries_dump_load(self, observed, tmp_path):
        obs, result = observed
        path = tmp_path / "timeseries.bin"
        obs.timeseries.dump(path)
        loaded = CounterTimeseries.load(path)
        assert loaded.sample_interval == obs.timeseries.sample_interval
        assert sorted(loaded.machines) == sorted(obs.timeseries.machines)
        for name, series in obs.timeseries.machines.items():
            twin = loaded.series(name)
            assert twin.fields == series.fields
            assert twin.times == series.times
            assert twin.rows == series.rows
        # The loaded series still integrates to the final counters.
        assert verify_integration(
            loaded, result.final_counters, result.server_counters
        ) == []

    def test_load_rejects_other_artifacts(self, tmp_path):
        from repro.pipeline.codec import encode_artifact

        path = tmp_path / "other.bin"
        path.write_bytes(encode_artifact([1, 2, 3]))
        with pytest.raises(SimulationError, match="not a counter timeseries"):
            CounterTimeseries.load(path)


class TestCli:
    def test_obs_subflags_require_obs(self, capsys):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["table4", "--obs-trace-out", "x.json"])
        with pytest.raises(SystemExit):
            main(["table4", "--obs-sample-interval", "30"])
        with pytest.raises(SystemExit):
            main(["table4", "--obs", "--obs-sample-interval", "0"])
        capsys.readouterr()
