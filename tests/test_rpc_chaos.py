"""Chaos suite for the at-most-once RPC transport: full replays over a
lossy channel, checked by the protocol-invariant oracle.

The core claim of the transport is that message-level faults degrade
*performance*, never *correctness*: a replay at any loss rate must make
the same protocol-visible progress as the zero-loss replay, spending
only retransmissions, duplicate suppressions, and stall time.  The
suite checks that claim three ways:

* **oracle-clean** -- at 0%, 1%, and 10% loss (plus duplicates,
  reordering, and delays), across several seeds, the oracle records no
  violation and the dirty-block ledger balances;
* **protocol equivalence** -- the lossy replay's counters equal the
  zero-loss replay's outside the message-accounting set (messages,
  resends, lost replies, channel delay, stall);
* **zero-loss byte-identity** -- with every message rate at zero the
  transport books nothing and the replay equals a plain one, channel
  RNG and all.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.fs import (
    ClusterConfig,
    FaultConfig,
    ProtocolOracle,
    run_cluster_on_trace,
)

CHAOS_SEEDS = (11, 23, 37, 41, 53)

LOSS_RATES = (0.0, 0.01, 0.10)

#: Client counters allowed to differ between a lossy replay and its
#: zero-loss twin: the cost of reliable delivery, never its outcome.
MESSAGE_ACCOUNTING = {
    "rpc_messages_sent",
    "rpc_retransmissions",
    "rpc_replies_lost",
    "rpc_delay_seconds",
    "stall_seconds",
}

#: Same idea, server side.
SERVER_MESSAGE_ACCOUNTING = {
    "duplicate_rpcs_suppressed",
    "rpc_replies_replayed",
    "stale_rpcs_dropped",
    "dedup_evictions",
}


def lossy_faults(rate: float) -> FaultConfig:
    """Loss plus proportional duplicate/reorder/delay rates."""
    return FaultConfig(
        message_loss_rate=rate,
        message_duplicate_rate=rate / 2,
        message_reorder_rate=rate / 2,
        message_delay_rate=rate,
    )


def run(small_trace, rate: float, seed: int, oracle=None):
    config = ClusterConfig(client_count=4, faults=lossy_faults(rate))
    return run_cluster_on_trace(
        small_trace.records, small_trace.duration, config, seed=seed,
        oracle=oracle,
    )


@pytest.mark.slow
@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("rate", LOSS_RATES)
def test_oracle_clean_at_every_loss_rate(small_trace, rate, seed):
    oracle = ProtocolOracle(seed=seed, raise_on_violation=False)
    result = run(small_trace, rate, seed, oracle)
    assert oracle.violations == []
    assert oracle.checks_run > 0
    oracle.assert_clean()
    # The ledger the oracle's final check balances, restated directly.
    for counters in result.final_counters.values():
        assert counters.dirty_blocks_accounted == counters.blocks_dirtied


@pytest.mark.slow
@pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
def test_lossy_replay_is_protocol_equivalent(small_trace, seed):
    """At 10% loss every protocol-visible counter matches zero-loss;
    only the message-accounting counters may move."""
    base = run(small_trace, 0.0, seed)
    lossy = run(small_trace, 0.10, seed)
    for client_id, bare in base.final_counters.items():
        noisy = lossy.final_counters[client_id]
        for name in type(bare).FIELDS:
            if name in MESSAGE_ACCOUNTING:
                continue
            assert getattr(bare, name) == getattr(noisy, name), (
                f"client {client_id} counter {name} diverged under loss"
            )
    for name in type(base.server_counters).FIELDS:
        if name in SERVER_MESSAGE_ACCOUNTING:
            continue
        assert getattr(base.server_counters, name) == getattr(
            lossy.server_counters, name
        ), f"server counter {name} diverged under loss"
    # And the loss was real: the channel did retransmit and suppress.
    assert any(
        c.rpc_retransmissions > 0 for c in lossy.final_counters.values()
    )
    assert lossy.server_counters.duplicate_rpcs_suppressed > 0


@pytest.mark.slow
@pytest.mark.parametrize("seed", CHAOS_SEEDS[:3])
def test_lossy_replay_is_deterministic(small_trace, seed):
    first = run(small_trace, 0.10, seed)
    second = run(small_trace, 0.10, seed)
    assert first.final_counters == second.final_counters
    assert first.server_counters == second.server_counters


def test_zero_rates_are_byte_identical_to_plain_replay(small_trace):
    """The inert transport: zero message rates book nothing, consume no
    randomness, and leave every snapshot identical to a plain replay."""
    config = ClusterConfig(client_count=4)
    plain = run_cluster_on_trace(
        small_trace.records, small_trace.duration, config, seed=9
    )
    with_transport = run_cluster_on_trace(
        small_trace.records, small_trace.duration,
        replace(config, faults=FaultConfig()), seed=9,
    )
    assert plain.final_counters == with_transport.final_counters
    assert plain.server_counters == with_transport.server_counters
    assert [
        (s.time, s.client_id, s.counters) for s in plain.all_snapshots()
    ] == [
        (s.time, s.client_id, s.counters)
        for s in with_transport.all_snapshots()
    ]
    for counters in with_transport.final_counters.values():
        assert counters.rpc_messages_sent == 0
        assert counters.rpc_delay_seconds == 0.0


@pytest.mark.slow
def test_duplicate_heavy_channel_is_idempotent(small_trace):
    """A channel that duplicates half of everything must not change one
    protocol-visible counter: suppression absorbs every copy."""
    config = ClusterConfig(
        client_count=4, faults=FaultConfig(message_duplicate_rate=0.5)
    )
    base = run_cluster_on_trace(
        small_trace.records, small_trace.duration,
        ClusterConfig(client_count=4), seed=13,
    )
    doubled = run_cluster_on_trace(
        small_trace.records, small_trace.duration, config, seed=13,
    )
    assert doubled.server_counters.duplicate_rpcs_suppressed > 0
    for name in type(base.server_counters).FIELDS:
        if name in SERVER_MESSAGE_ACCOUNTING:
            continue
        assert getattr(base.server_counters, name) == getattr(
            doubled.server_counters, name
        )
    for client_id, bare in base.final_counters.items():
        noisy = doubled.final_counters[client_id]
        for name in type(bare).FIELDS:
            if name in MESSAGE_ACCOUNTING:
                continue
            assert getattr(bare, name) == getattr(noisy, name)
