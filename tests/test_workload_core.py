"""Tests for workload building blocks: distributions, users, filespace,
emitter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import ConfigError, TraceError
from repro.common.ids import ClientId, UserId
from repro.common.rng import RngStream
from repro.common.units import KB, MB
from repro.trace.records import AccessMode
from repro.trace.validate import validate_stream
from repro.workload.distributions import (
    FileSizeModel,
    SizeClass,
    diurnal_weight,
    io_duration,
    open_latency,
    process_rate,
)
from repro.workload.emitter import RecordEmitter
from repro.workload.filespace import FileSpace
from repro.workload.users import UserGroup, build_user_population


@pytest.fixture()
def filespace(rng):
    return FileSpace(server_count=4, rng=rng)


@pytest.fixture()
def emitter(filespace):
    return RecordEmitter(filespace)


class TestDistributions:
    def test_typical_model_samples_positive(self, rng):
        model = FileSizeModel.typical()
        for _ in range(200):
            assert model.sample(rng) >= 1

    def test_class_caps_respected(self, rng):
        model = FileSizeModel.typical()
        for _ in range(200):
            assert model.sample(rng, SizeClass.TINY) <= 4 * KB
            assert model.sample(rng, SizeClass.HUGE) <= 24 * MB

    def test_huge_files_are_megabytes(self, rng):
        model = FileSizeModel.typical()
        sizes = [model.sample(rng, SizeClass.HUGE) for _ in range(50)]
        assert min(sizes) > 1 * MB

    def test_most_samples_are_small(self, rng):
        model = FileSizeModel.typical()
        sizes = [model.sample(rng) for _ in range(2000)]
        small = sum(1 for s in sizes if s < 64 * KB)
        assert small / len(sizes) > 0.7

    def test_empty_weights_rejected(self):
        with pytest.raises(ConfigError):
            FileSizeModel(weights={})

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            FileSizeModel(weights={SizeClass.TINY: -1.0})

    def test_io_duration_monotone_in_bytes(self):
        assert io_duration(1000, 1e6, 0.01) < io_duration(100000, 1e6, 0.01)

    def test_io_duration_rejects_bad_inputs(self):
        with pytest.raises(ConfigError):
            io_duration(-1, 1e6, 0.0)
        with pytest.raises(ConfigError):
            io_duration(1, 0.0, 0.0)

    def test_open_latency_band(self, rng):
        for _ in range(100):
            assert 0.010 <= open_latency(rng) <= 0.040

    def test_process_rate_band(self, rng):
        for _ in range(100):
            assert 0.5 * MB <= process_rate(rng) <= 2.0 * MB

    def test_diurnal_peaks_in_afternoon(self):
        assert diurnal_weight(15 * 3600.0) > diurnal_weight(4 * 3600.0)

    def test_diurnal_positive_everywhere(self):
        for hour in range(24):
            assert diurnal_weight(hour * 3600.0) > 0


class TestUserPopulation:
    def build(self, rng, regular=6, occasional=4, migration=3):
        return build_user_population(
            rng, regular_users=regular, occasional_users=occasional,
            client_count=10, migration_user_target=migration,
        )

    def test_population_size(self, rng):
        assert len(self.build(rng)) == 10

    def test_migration_target_met(self, rng):
        users = self.build(rng, migration=3)
        assert sum(1 for u in users if u.uses_migration) == 3

    def test_groups_roughly_equal(self, rng):
        users = self.build(rng, regular=8, occasional=8, migration=4)
        by_group = {g: 0 for g in UserGroup}
        for user in users:
            by_group[user.group] += 1
        assert all(count == 4 for count in by_group.values())

    def test_regular_users_session_more(self, rng):
        users = self.build(rng)
        regulars = [u.sessions_per_day for u in users if u.regular]
        occasionals = [u.sessions_per_day for u in users if not u.regular]
        assert min(regulars) > max(occasionals)

    def test_home_clients_assigned(self, rng):
        users = self.build(rng)
        assert all(0 <= int(u.home_client) < 10 for u in users)

    def test_migration_exceeding_population_raises(self, rng):
        with pytest.raises(ConfigError):
            self.build(rng, regular=2, occasional=0, migration=5)

    def test_empty_population_raises(self, rng):
        with pytest.raises(ConfigError):
            self.build(rng, regular=0, occasional=0, migration=0)

    def test_app_mix_covers_groups(self, rng):
        for user in self.build(rng):
            mix = user.app_mix()
            assert "edit" in mix and "shell" in mix
            assert all(weight >= 0 for weight in mix.values())

    def test_shares_files_is_deterministic_subset(self, rng):
        users = self.build(rng, regular=10, occasional=10, migration=4)
        sharers = [u for u in users if u.shares_files]
        assert 0 < len(sharers) < len(users)


class TestFileSpace:
    def test_create_and_get(self, filespace):
        state = filespace.create(1.0, UserId(3), size=100)
        assert filespace.get(state.file_id) is state
        assert filespace.exists(state.file_id)
        assert state.size == 100

    def test_create_with_size_sets_byte_times(self, filespace):
        state = filespace.create(5.0, UserId(0), size=10)
        assert state.oldest_byte_time == 5.0
        assert state.newest_byte_time == 5.0

    def test_create_empty_has_no_byte_times(self, filespace):
        state = filespace.create(5.0, UserId(0))
        assert state.oldest_byte_time == -1.0

    def test_negative_size_rejected(self, filespace):
        with pytest.raises(TraceError):
            filespace.create(0.0, UserId(0), size=-1)

    def test_delete_removes(self, filespace):
        state = filespace.create(0.0, UserId(0))
        filespace.delete(state.file_id)
        assert not filespace.exists(state.file_id)
        with pytest.raises(TraceError):
            filespace.get(state.file_id)

    def test_double_delete_raises(self, filespace):
        state = filespace.create(0.0, UserId(0))
        filespace.delete(state.file_id)
        with pytest.raises(TraceError):
            filespace.delete(state.file_id)

    def test_server_zero_gets_most_files(self, filespace):
        servers = [
            int(filespace.create(0.0, UserId(0)).server_id) for _ in range(400)
        ]
        assert servers.count(0) > 200
        assert len(set(servers)) > 1

    def test_record_write_extends_size(self, filespace):
        state = filespace.create(0.0, UserId(0))
        state.record_write(1.0, 0, 100, client=2)
        assert state.size == 100
        state.record_write(2.0, 100, 50, client=2)
        assert state.size == 150

    def test_full_overwrite_resets_oldest(self, filespace):
        state = filespace.create(0.0, UserId(0))
        state.record_write(1.0, 0, 100, client=2)
        state.record_write(5.0, 0, 100, client=2)
        assert state.oldest_byte_time == 5.0

    def test_partial_write_keeps_oldest(self, filespace):
        state = filespace.create(0.0, UserId(0))
        state.record_write(1.0, 0, 100, client=2)
        state.record_write(5.0, 50, 10, client=3)
        assert state.oldest_byte_time == 1.0
        assert state.newest_byte_time == 5.0
        assert state.last_writer_client == 3

    def test_truncate_resets(self, filespace):
        state = filespace.create(0.0, UserId(0), size=100)
        state.truncate(3.0)
        assert state.size == 0
        assert state.oldest_byte_time == -1.0

    def test_live_count(self, filespace):
        a = filespace.create(0.0, UserId(0))
        filespace.create(0.0, UserId(0))
        assert filespace.live_count == 2
        filespace.delete(a.file_id)
        assert filespace.live_count == 1
        assert filespace.created_count == 2
        assert filespace.deleted_count == 1


class TestEmitter:
    def test_whole_episode_is_valid(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        episode = emitter.open_file(
            1.0, file, UserId(1), ClientId(2), AccessMode.WRITE
        )
        episode.write(2.0, 0, 100)
        episode.close(2.5)
        records = sorted(emitter.records, key=lambda r: r.time)
        report = validate_stream(records)
        assert report.balanced

    def test_write_updates_filespace(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        episode = emitter.open_file(
            1.0, file, UserId(1), ClientId(2), AccessMode.WRITE
        )
        episode.write(2.0, 0, 100)
        episode.close(2.5)
        assert file.size == 100
        assert file.newest_byte_time == 2.0

    def test_reposition_emitted_on_seek(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2), )
        file.record_write(0.1, 0, 1000, client=0)
        episode = emitter.open_file(
            1.0, file, UserId(1), ClientId(2), AccessMode.READ
        )
        episode.read(2.0, 0, 100)
        episode.read(3.0, 500, 100)  # jump -> reposition
        episode.close(3.5)
        kinds = [r.kind for r in emitter.records]
        assert kinds.count("reposition") == 1

    def test_contiguous_runs_no_reposition(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        file.record_write(0.1, 0, 1000, client=0)
        episode = emitter.open_file(
            1.0, file, UserId(1), ClientId(2), AccessMode.READ
        )
        episode.read(2.0, 0, 500)
        episode.read(3.0, 500, 500)
        episode.close(3.5)
        assert all(r.kind != "reposition" for r in emitter.records)

    def test_close_totals(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        episode = emitter.open_file(
            1.0, file, UserId(1), ClientId(2), AccessMode.READ_WRITE
        )
        episode.write(2.0, 0, 300)
        episode.read(3.0, 0, 200)
        episode.close(4.0)
        close = [r for r in emitter.records if r.kind == "close"][0]
        assert close.bytes_written == 300
        assert close.bytes_read == 200
        assert close.size_at_close == 300

    def test_truncate_on_open(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        file.record_write(0.5, 0, 500, client=2)
        episode = emitter.open_file(
            1.0, file, UserId(1), ClientId(2), AccessMode.WRITE, truncate=True
        )
        assert file.size == 0
        episode.close(1.5)
        open_record = [r for r in emitter.records if r.kind == "open"][0]
        assert open_record.size_at_open == 500  # size before truncation

    def test_truncate_readonly_rejected(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        with pytest.raises(TraceError):
            emitter.open_file(
                1.0, file, UserId(1), ClientId(2), AccessMode.READ, truncate=True
            )

    def test_open_deleted_file_rejected(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        emitter.delete_file(1.0, file, UserId(1), ClientId(2))
        with pytest.raises(TraceError):
            emitter.open_file(2.0, file, UserId(1), ClientId(2), AccessMode.READ)

    def test_double_close_rejected(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        episode = emitter.open_file(1.0, file, UserId(1), ClientId(2),
                                    AccessMode.READ)
        episode.close(2.0)
        with pytest.raises(TraceError):
            episode.close(3.0)

    def test_time_going_backwards_rejected(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        episode = emitter.open_file(1.0, file, UserId(1), ClientId(2),
                                    AccessMode.WRITE)
        episode.write(2.0, 0, 10)
        with pytest.raises(TraceError):
            episode.write(1.5, 10, 10)

    def test_delete_carries_byte_times(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        episode = emitter.open_file(1.0, file, UserId(1), ClientId(2),
                                    AccessMode.WRITE)
        episode.write(2.0, 0, 100)
        episode.close(2.5)
        emitter.delete_file(10.0, file, UserId(1), ClientId(2))
        delete = [r for r in emitter.records if r.kind == "delete"][0]
        assert delete.oldest_byte_time == 2.0
        assert delete.size == 100

    def test_shared_request_records(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        episode = emitter.open_file(1.0, file, UserId(1), ClientId(2),
                                    AccessMode.WRITE)
        episode.shared_request(2.0, 0, 50, is_write=True)
        episode.shared_request(3.0, 0, 50, is_write=False)
        episode.close(4.0)
        kinds = [r.kind for r in emitter.records]
        assert "shared_write" in kinds and "shared_read" in kinds

    def test_directory_read(self, emitter):
        emitter.read_directory(1.0, UserId(1), ClientId(2), 512)
        assert emitter.records[-1].kind == "dir_read"
        with pytest.raises(TraceError):
            emitter.read_directory(1.0, UserId(1), ClientId(2), 0)

    def test_open_episode_count_tracks(self, emitter):
        file = emitter.create_file(0.0, UserId(1), ClientId(2))
        episode = emitter.open_file(1.0, file, UserId(1), ClientId(2),
                                    AccessMode.READ)
        assert emitter.open_episode_count == 1
        episode.close(2.0)
        assert emitter.open_episode_count == 0


@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=10_000),
            st.integers(min_value=1, max_value=5_000),
        ),
        min_size=1,
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_filespace_size_invariant(writes):
    """File size is always the max extent ever written."""
    space = FileSpace(server_count=1, rng=RngStream.root(0))
    state = space.create(0.0, UserId(0))
    expected = 0
    for step, (offset, length) in enumerate(writes):
        state.record_write(float(step + 1), offset, length, client=0)
        expected = max(expected, offset + length)
    assert state.size == expected
    assert state.newest_byte_time == float(len(writes))
