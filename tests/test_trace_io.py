"""Tests for trace writer/reader, merge, filters, and validation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.errors import TraceError, TraceOrderError
from repro.trace import (
    CloseRecord,
    OpenRecord,
    ReadRunRecord,
    TraceReader,
    TraceWriter,
    drop_self_traffic,
    drop_users,
    merge_streams,
    read_trace,
    time_window,
    validate_stream,
    write_trace,
)
from repro.trace.filters import BACKUP_USER_ID, TRACER_USER_ID, compose, keep_kinds
from repro.trace.records import DeleteRecord


def make_episode(open_id=1, file_id=7, t0=0.0, user_id=1):
    return [
        OpenRecord(time=t0, server_id=0, open_id=open_id, file_id=file_id,
                   user_id=user_id),
        ReadRunRecord(time=t0 + 0.5, server_id=0, open_id=open_id,
                      file_id=file_id, user_id=user_id, offset=0, length=100),
        CloseRecord(time=t0 + 1.0, server_id=0, open_id=open_id,
                    file_id=file_id, user_id=user_id, bytes_read=100),
    ]


class TestWriterReader:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = make_episode()
        assert write_trace(path, records) == 3
        assert list(read_trace(path)) == records

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        records = make_episode()
        write_trace(path, records)
        assert list(read_trace(path)) == records

    def test_writer_requires_open(self, tmp_path):
        writer = TraceWriter(tmp_path / "x.jsonl")
        with pytest.raises(TraceError):
            writer.write(make_episode()[0])

    def test_writer_double_open_raises(self, tmp_path):
        writer = TraceWriter(tmp_path / "x.jsonl")
        with writer:
            with pytest.raises(TraceError):
                writer.open()

    def test_reader_requires_open(self, tmp_path):
        path = tmp_path / "x.jsonl"
        write_trace(path, make_episode())
        reader = TraceReader(path)
        with pytest.raises(TraceError):
            list(reader)

    def test_reader_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(TraceError, match="invalid JSON"):
            list(read_trace(path))

    def test_reader_skips_blank_lines(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        write_trace(path, make_episode())
        path.write_text(path.read_text() + "\n\n")
        assert len(list(read_trace(path))) == 3

    def test_records_written_counter(self, tmp_path):
        with TraceWriter(tmp_path / "x.jsonl") as writer:
            writer.write_all(make_episode())
            assert writer.records_written == 3


class TestRecordStream:
    """``read_trace`` returns a stream whose progress is observable --
    the count streaming replays report while a trace drains."""

    def test_records_read_is_live(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, make_episode())
        stream = read_trace(path)
        assert stream.records_read == 0
        next(stream)
        assert stream.records_read == 1
        next(stream)
        assert stream.records_read == 2
        assert len(list(stream)) == 1
        assert stream.records_read == 3

    def test_exhaustion_closes_and_count_persists(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, make_episode())
        stream = read_trace(path)
        assert list(stream) == make_episode()
        assert stream.records_read == 3
        stream.close()  # idempotent after auto-close at exhaustion

    def test_context_manager_closes_early(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, make_episode())
        with read_trace(path) as stream:
            next(stream)
            assert stream.records_read == 1
        assert stream.records_read == 1  # count survives the close

    def test_path_property(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_trace(path, make_episode())
        with read_trace(path) as stream:
            assert stream.path == str(path)


class TestMerge:
    def test_merges_in_time_order(self):
        a = make_episode(open_id=1, t0=0.0)
        b = make_episode(open_id=2, t0=0.25)
        merged = list(merge_streams([a, b]))
        times = [r.time for r in merged]
        assert times == sorted(times)
        assert len(merged) == 6

    def test_stable_on_ties(self):
        a = [OpenRecord(time=1.0, server_id=0, open_id=1, file_id=1)]
        b = [OpenRecord(time=1.0, server_id=1, open_id=2, file_id=2)]
        merged = list(merge_streams([a, b]))
        assert merged[0].server_id == 0  # first stream wins ties

    def test_detects_unsorted_stream(self):
        bad = [
            OpenRecord(time=2.0, server_id=0, open_id=1, file_id=1),
            OpenRecord(time=1.0, server_id=0, open_id=2, file_id=1),
        ]
        with pytest.raises(TraceOrderError):
            list(merge_streams([bad]))

    def test_empty_streams(self):
        assert list(merge_streams([[], []])) == []

    @given(
        st.lists(
            st.lists(st.floats(min_value=0, max_value=1e6), max_size=30).map(sorted),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_property(self, streams):
        record_streams = [
            [
                OpenRecord(time=t, server_id=i, open_id=i * 1000 + j, file_id=1)
                for j, t in enumerate(times)
            ]
            for i, times in enumerate(streams)
        ]
        merged = list(merge_streams(record_streams))
        assert len(merged) == sum(len(s) for s in streams)
        times = [r.time for r in merged]
        assert times == sorted(times)


class TestFilters:
    def test_drop_self_traffic(self):
        records = make_episode(user_id=TRACER_USER_ID) + make_episode(
            open_id=2, user_id=5
        )
        kept = list(drop_self_traffic(records))
        assert all(r.user_id == 5 for r in kept)

    def test_drop_backup_traffic(self):
        records = make_episode(user_id=BACKUP_USER_ID)
        assert list(drop_self_traffic(records)) == []

    def test_drop_users(self):
        records = make_episode(user_id=1) + make_episode(open_id=2, user_id=2)
        kept = list(drop_users(records, [1]))
        assert all(r.user_id == 2 for r in kept)

    def test_time_window(self):
        records = make_episode(t0=0.0) + make_episode(open_id=2, t0=100.0)
        kept = list(time_window(records, 0.0, 50.0))
        assert len(kept) == 3

    def test_time_window_empty_raises(self):
        with pytest.raises(ValueError):
            list(time_window([], 5.0, 5.0))

    def test_keep_kinds(self):
        records = make_episode()
        kept = list(keep_kinds(records, ["open"]))
        assert len(kept) == 1
        assert kept[0].kind == "open"

    def test_compose(self):
        records = make_episode(user_id=TRACER_USER_ID) + make_episode(
            open_id=2, user_id=5
        )
        pipeline = compose(drop_self_traffic, lambda rs: keep_kinds(rs, ["open"]))
        kept = list(pipeline(records))
        assert len(kept) == 1


class TestValidate:
    def test_valid_stream(self):
        report = validate_stream(make_episode())
        assert report.balanced
        assert report.opens == 1
        assert report.closes == 1

    def test_unsorted_raises(self):
        records = [
            OpenRecord(time=5.0, server_id=0, open_id=1, file_id=1),
            OpenRecord(time=1.0, server_id=0, open_id=2, file_id=1),
        ]
        with pytest.raises(TraceOrderError):
            validate_stream(records)

    def test_double_open_raises(self):
        records = [
            OpenRecord(time=0.0, server_id=0, open_id=1, file_id=1),
            OpenRecord(time=1.0, server_id=0, open_id=1, file_id=1),
        ]
        with pytest.raises(TraceError, match="opened twice"):
            validate_stream(records)

    def test_close_of_unknown_open_raises(self):
        records = [CloseRecord(time=1.0, server_id=0, open_id=9, file_id=1)]
        with pytest.raises(TraceError, match="unknown open_id"):
            validate_stream(records)

    def test_close_with_wrong_file_raises(self):
        records = [
            OpenRecord(time=0.0, server_id=0, open_id=1, file_id=1),
            CloseRecord(time=1.0, server_id=0, open_id=1, file_id=2),
        ]
        with pytest.raises(TraceError, match="names file"):
            validate_stream(records)

    def test_run_outside_episode_raises(self):
        records = [
            ReadRunRecord(time=0.0, server_id=0, open_id=1, file_id=1,
                          offset=0, length=10),
        ]
        with pytest.raises(TraceError, match="unopened"):
            validate_stream(records)

    def test_negative_length_raises(self):
        records = [
            OpenRecord(time=0.0, server_id=0, open_id=1, file_id=1),
            ReadRunRecord(time=0.5, server_id=0, open_id=1, file_id=1,
                          offset=0, length=-5),
        ]
        with pytest.raises(TraceError, match="negative"):
            validate_stream(records)

    def test_unclosed_episodes_reported(self):
        records = [OpenRecord(time=0.0, server_id=0, open_id=1, file_id=1)]
        report = validate_stream(records, allow_open_at_end=True)
        assert report.unclosed_open_ids == [1]
        assert not report.balanced

    def test_unclosed_episodes_strict(self):
        records = [OpenRecord(time=0.0, server_id=0, open_id=1, file_id=1)]
        with pytest.raises(TraceError, match="never closed"):
            validate_stream(records, allow_open_at_end=False)

    def test_non_episode_records_pass_through(self):
        records = [
            DeleteRecord(time=0.0, server_id=0, file_id=1, user_id=1,
                         client_id=0, size=10),
        ]
        report = validate_stream(records)
        assert report.records == 1
