"""Tests for the full-report generator and the report CLI path."""

import pytest

from repro.experiments.cli import main
from repro.experiments.report import build_report, write_report


class TestReport:
    def test_build_report_contains_all_sections(self, experiment_context):
        text = build_report(experiment_context)
        for marker in (
            "SECTION 4", "SECTION 5", "CACHE CONSISTENCY", "THEN VS NOW",
            "BEYOND THE PAPER", "Table R",
            "Table 1", "Table 12", "Figure 4",
            "Paging latency and network analysis",
        ):
            assert marker in text

    def test_write_report(self, tmp_path, experiment_context):
        path = tmp_path / "report.txt"
        text = write_report(path, experiment_context)
        assert path.read_text(encoding="utf-8") == text

    @pytest.mark.slow
    def test_cli_report_option(self, tmp_path, capsys):
        path = tmp_path / "r.txt"
        exit_code = main(
            ["all", "--scale", "0.03", "--seed", "3", "--report", str(path)]
        )
        assert exit_code == 0
        assert path.exists()
        assert "wrote report" in capsys.readouterr().out


class TestFigureExport:
    def test_export_figure_data(self, tmp_path, experiment_context):
        from repro.analysis import read_cdf_csv
        from repro.experiments.report import export_figure_data

        written = export_figure_data(tmp_path, experiment_context)
        assert len(written) == 4
        for path in written:
            curves = read_cdf_csv(path)
            assert curves
            for points in curves.values():
                fractions = [fraction for _, fraction in points]
                assert fractions == sorted(fractions)

    def test_cli_figures_dir(self, tmp_path, capsys):
        exit_code = main(
            ["figure1", "--scale", "0.03", "--seed", "3",
             "--figures-dir", str(tmp_path / "figs")]
        )
        assert exit_code == 0
        assert (tmp_path / "figs" / "figure1.csv").exists()
        assert (tmp_path / "figs" / "figure4.csv").exists()
