"""Tests for interval bucketing and the extras of the render module."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.cdf import Cdf
from repro.common.errors import AnalysisError
from repro.common.intervals import (
    Interval,
    IntervalAccumulator,
    interval_index,
    span_intervals,
)
from repro.common.render import render_cdf_figure


class TestIntervalIndex:
    def test_basic(self):
        assert interval_index(0.0, 10.0) == 0
        assert interval_index(9.999, 10.0) == 0
        assert interval_index(10.0, 10.0) == 1

    def test_negative_times(self):
        assert interval_index(-0.5, 10.0) == -1

    def test_origin_shift(self):
        assert interval_index(5.0, 10.0, origin=5.0) == 0

    def test_zero_width_raises(self):
        with pytest.raises(ValueError):
            interval_index(0.0, 0.0)


class TestIntervalAccumulator:
    def test_groups_observations(self):
        acc = IntervalAccumulator(width=10.0, factory=list)
        acc.observe(1.0).append("a")
        acc.observe(5.0).append("b")
        acc.observe(15.0).append("c")
        assert acc.bucket_count == 2
        values = list(acc.values())
        assert values == [["a", "b"], ["c"]]

    def test_items_in_time_order(self):
        acc = IntervalAccumulator(width=10.0, factory=list)
        acc.observe(25.0)
        acc.observe(5.0)
        intervals = [interval for interval, _ in acc.items()]
        assert [i.index for i in intervals] == [0, 2]
        assert intervals[0].start == 0.0
        assert intervals[1].end == 30.0

    def test_interval_for(self):
        acc = IntervalAccumulator(width=10.0, factory=list, origin=100.0)
        interval = acc.interval_for(2)
        assert interval == Interval(index=2, start=120.0, end=130.0)

    def test_bad_width_raises(self):
        with pytest.raises(ValueError):
            IntervalAccumulator(width=0.0, factory=list)


class TestSpanIntervals:
    def test_span_within_one(self):
        spans = list(span_intervals(1.0, 5.0, 10.0))
        assert len(spans) == 1
        assert spans[0].index == 0

    def test_span_across_boundary(self):
        spans = list(span_intervals(5.0, 15.0, 10.0))
        assert [s.index for s in spans] == [0, 1]

    def test_span_ending_on_boundary(self):
        spans = list(span_intervals(5.0, 10.0, 10.0))
        assert [s.index for s in spans] == [0]

    def test_point_span(self):
        spans = list(span_intervals(5.0, 5.0, 10.0))
        assert [s.index for s in spans] == [0]

    def test_backwards_raises(self):
        with pytest.raises(AnalysisError):
            list(span_intervals(10.0, 5.0, 10.0))

    @given(
        start=st.floats(min_value=0, max_value=1e5),
        length=st.floats(min_value=0, max_value=1e5),
        width=st.floats(min_value=0.1, max_value=1e4),
    )
    @settings(max_examples=100, deadline=None)
    @pytest.mark.slow
    def test_span_covers_endpoints_property(self, start, length, width):
        end = start + length
        spans = list(span_intervals(start, end, width))
        # Float boundary fuzz: index*width can land an ulp past the
        # requested time, so compare with a width-relative tolerance.
        eps = width * 1e-9 + 1e-9
        assert spans[0].start <= start + eps
        assert start < spans[0].end + eps
        assert spans[-1].start <= max(start, end) + eps
        # Consecutive and non-overlapping.
        for a, b in zip(spans, spans[1:]):
            assert b.index == a.index + 1


class TestCdfFigureRendering:
    def test_figure_contains_probe_rows(self):
        cdf = Cdf()
        cdf.extend([1, 10, 100, 1000])
        text = render_cdf_figure(
            "Test figure", {"curve": cdf}, xlabel="x",
            probe_values=[1, 10, 100, 1000],
        )
        assert "Test figure" in text
        assert "100.0%" in text
        assert "curve" in text

    def test_empty_curves_rejected(self):
        with pytest.raises(ValueError):
            render_cdf_figure("t", {}, "x", [1.0])

    def test_multiple_curves(self):
        a, b = Cdf(), Cdf()
        a.extend([1, 2])
        b.extend([100, 200])
        text = render_cdf_figure(
            "t", {"a": a, "b": b}, xlabel="v", probe_values=[2, 200]
        )
        assert text.count("|") >= 4  # two sparkline rows
