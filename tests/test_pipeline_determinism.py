"""Parallel and cached builds must be indistinguishable from serial.

The pipeline's whole contract is that ``workers=N`` and a warm cache
are pure performance knobs: every Table 1-12 metric comes out *exactly*
equal (float-for-float, not approximately) no matter how the inputs
were built.  Seeds are baked into the task specs and worker results are
collected in submission order, so this is equality by construction --
this test is the proof.
"""

from __future__ import annotations

import pytest

from repro.experiments import EXPERIMENT_IDS, ExperimentContext, run_experiment

SCALE = 0.05
SEED = 1991


def _all_metrics(context: ExperimentContext) -> dict[str, dict[str, float]]:
    return {
        experiment_id: run_experiment(experiment_id, context).metrics
        for experiment_id in EXPERIMENT_IDS
    }


@pytest.fixture(scope="module")
def serial_metrics(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("determinism-cache")
    context = ExperimentContext(scale=SCALE, seed=SEED, workers=1, cache=cache_dir)
    metrics = _all_metrics(context)
    assert context._artifact_cache.stats.hits == 0  # genuinely cold
    return cache_dir, metrics


@pytest.mark.slow
def test_parallel_build_is_byte_identical(serial_metrics):
    """workers=4 (cold, no cache) reproduces the serial metrics exactly."""
    _, expected = serial_metrics
    parallel = ExperimentContext(scale=SCALE, seed=SEED, workers=4, cache=False)
    assert _all_metrics(parallel) == expected


def test_warm_cache_build_is_byte_identical(serial_metrics):
    """A warm-cache rebuild reproduces the serial metrics exactly."""
    cache_dir, expected = serial_metrics
    warm = ExperimentContext(scale=SCALE, seed=SEED, workers=1, cache=cache_dir)
    metrics = _all_metrics(warm)
    stats = warm._artifact_cache.stats
    assert stats.misses == 0 and stats.hits > 0  # served entirely from cache
    assert metrics == expected
