"""Shared fixtures.

The expensive inputs (synthetic traces, cluster replays) are built once
per session at a small scale and shared across test modules; tests that
need pristine state build their own tiny inputs instead.
"""

from __future__ import annotations

import pytest

from repro.common.rng import RngStream


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help=(
            "Rewrite tests/golden/*.json from the current experiment "
            "outputs instead of comparing against them.  Use after an "
            "intentional behaviour change; review the diff."
        ),
    )
from repro.experiments import ExperimentContext
from repro.fs import ClusterConfig, run_cluster_on_trace
from repro.workload import STANDARD_PROFILES, generate_trace


@pytest.fixture(scope="session", autouse=True)
def _hermetic_artifact_cache(tmp_path_factory):
    """Point the artifact cache at a per-session temp directory.

    Tests must neither read a developer's warm ``~/.cache/repro`` (a
    stale hit would mask a regression) nor pollute it.
    """
    monkeypatch = pytest.MonkeyPatch()
    monkeypatch.setenv(
        "REPRO_CACHE_DIR", str(tmp_path_factory.mktemp("artifact-cache"))
    )
    yield
    monkeypatch.undo()


@pytest.fixture()
def rng() -> RngStream:
    return RngStream.root(12345)


@pytest.fixture(scope="session")
def small_trace():
    """One small trace (trace1 profile) shared read-only by many tests."""
    return generate_trace(STANDARD_PROFILES[0], seed=2024, scale=0.05)


@pytest.fixture(scope="session")
def sim_trace():
    """A simulation-heavy trace (trace3 profile), small scale."""
    return generate_trace(STANDARD_PROFILES[2], seed=2026, scale=0.05)


@pytest.fixture(scope="session")
def shared_heavy_trace():
    """The write-sharing-heavy trace (trace8 profile), small scale."""
    return generate_trace(STANDARD_PROFILES[7], seed=2031, scale=0.05)


@pytest.fixture(scope="session")
def cluster_result(small_trace):
    """One cluster replay of the small trace."""
    config = ClusterConfig(client_count=4)
    return run_cluster_on_trace(
        small_trace.records, small_trace.duration, config, seed=9
    )


@pytest.fixture(scope="session")
def experiment_context():
    """A shared context for experiment-level tests (tiny scale)."""
    return ExperimentContext(scale=0.05, seed=1991)
