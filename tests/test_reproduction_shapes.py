"""Integration tests: the paper's headline claims must hold in shape.

These tests run the full pipeline at a small scale and assert the
qualitative results of each table/figure -- who wins, rough magnitudes,
where the crossovers fall -- matching the bands documented in
EXPERIMENTS.md.  Absolute numbers differ from the paper (our substrate
is a simulator), but these bands are the reproduction contract.
"""

import pytest

from repro.experiments import ExperimentContext, run_experiment


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(scale=0.1, seed=1991)


class TestSection4Shapes:
    def test_table1_trace_scale(self, ctx):
        metrics = run_experiment("table1", ctx).metrics
        # Totals scale with population; at scale 0.1 expect ~1/10 of the
        # paper's 0.1-1.3M opens and 0.8-17.8 GB reads per trace pool.
        assert metrics["total_opens"] > 5_000
        assert metrics["total_mbytes_read"] > 300
        assert 2 <= metrics["min_users"] <= metrics["max_users"] <= 50

    def test_table2_throughput_and_bursts(self, ctx):
        metrics = run_experiment("table2", ctx).metrics
        # Paper: 8 KB/s per active user over 10-min intervals (20x BSD).
        assert 2.0 < metrics["avg_user_throughput_10min_kbs"] < 32.0
        # 10-second bursts far exceed the 10-minute average.
        assert (metrics["avg_user_throughput_10s_kbs"]
                > 2 * metrics["avg_user_throughput_10min_kbs"])
        # Migration multiplies throughput (paper ~6x; accept >1.5x).
        assert metrics["migration_burst_factor"] > 1.5
        # Peak bursts reach megabytes/second.
        assert metrics["peak_user_10s_kbs"] > 1000

    def test_table3_access_mix(self, ctx):
        metrics = run_experiment("table3", ctx).metrics
        assert 0.78 < metrics["read_only_access_share"] < 0.95
        assert 0.05 < metrics["write_only_access_share"] < 0.20
        assert 0.0 < metrics["read_write_access_share"] < 0.03
        assert 0.65 < metrics["ro_whole_file_share"] < 0.90
        assert metrics["sequential_bytes_fraction"] > 0.90

    def test_figure1_run_lengths(self, ctx):
        metrics = run_experiment("figure1", ctx).metrics
        assert 0.70 < metrics["runs_below_10kb"] < 0.92
        assert metrics["bytes_in_runs_over_1mb"] >= 0.10

    def test_figure2_file_sizes(self, ctx):
        metrics = run_experiment("figure2", ctx).metrics
        assert 0.65 < metrics["accesses_below_10kb"] < 0.92
        assert metrics["bytes_from_files_over_1mb"] >= 0.30

    def test_figure3_open_times(self, ctx):
        metrics = run_experiment("figure3", ctx).metrics
        assert 0.65 < metrics["opens_below_quarter_second"] < 0.95
        assert metrics["median_open_seconds"] < 0.25

    def test_figure4_lifetimes(self, ctx):
        metrics = run_experiment("figure4", ctx).metrics
        assert 0.60 < metrics["files_under_30s"] < 0.90
        # Short-lived files are small: byte-weighted mass much lower.
        assert metrics["bytes_under_30s"] < metrics["files_under_30s"] - 0.2


class TestSection5Shapes:
    def test_table4_cache_sizes(self, ctx):
        metrics = run_experiment("table4", ctx).metrics
        # Paper: ~7 MB of 24 MB (one quarter to one third of memory).
        assert 3.0 < metrics["avg_cache_mb"] < 12.0
        # Sizes vary by hundreds of KB over 15-minute windows.
        assert metrics["avg_15min_change_kb"] > 50
        assert metrics["max_15min_change_kb"] > 1000

    def test_table5_traffic_sources(self, ctx):
        metrics = run_experiment("table5", ctx).metrics
        assert 0.20 < metrics["paging_share"] < 0.55
        assert 0.08 < metrics["uncacheable_share"] < 0.35
        assert metrics["write_shared_share"] < 0.05

    def test_table6_cache_effectiveness(self, ctx):
        metrics = run_experiment("table6", ctx).metrics
        assert 0.15 < metrics["read_miss_ratio"] < 0.60
        # Paper's surprise: migrated processes hit better than average.
        assert (metrics["migrated_read_miss_ratio"]
                < metrics["read_miss_ratio"] + 0.10)
        assert 0.70 < metrics["writeback_traffic_ratio"] < 1.2
        assert metrics["write_fetch_ratio"] < 0.05
        # ~10% of new bytes die before writeback.
        assert 0.03 < metrics["write_absorption"] < 0.30

    def test_table7_server_traffic(self, ctx):
        metrics = run_experiment("table7", ctx).metrics
        assert 0.20 < metrics["paging_share"] < 0.60
        assert metrics["write_shared_share"] < 0.05
        # Caches filter roughly half of raw traffic.
        assert 0.35 < metrics["global_filter_ratio"] < 0.75

    def test_table8_replacement(self, ctx):
        metrics = run_experiment("table8", ctx).metrics
        # Most replacement makes room for other file blocks.
        assert metrics["for_file_share"] > metrics["for_vm_share"] - 0.15
        assert metrics["for_vm_share"] > 0.02
        # Ages are tens of minutes or more.
        assert metrics["age_file_minutes"] > 10

    def test_table9_cleaning(self, ctx):
        metrics = run_experiment("table9", ctx).metrics
        # The 30-second delay dominates (paper ~3/4).
        assert metrics["delay_share"] > 0.5
        assert metrics["delay_share"] > metrics["fsync_share"]
        assert metrics["delay_share"] > metrics["recall_share"]
        assert metrics["vm_share"] < 0.15
        assert 28 < metrics["delay_age_seconds"] < 60

    def test_table10_consistency_rare(self, ctx):
        metrics = run_experiment("table10", ctx).metrics
        assert 0.0005 < metrics["write_sharing_fraction"] < 0.01
        assert metrics["recall_fraction"] < 0.05
        assert metrics["recall_fraction"] > metrics["write_sharing_fraction"]

    def test_table11_polling_errors(self, ctx):
        metrics = run_experiment("table11", ctx).metrics
        # 60-second polling produces many errors; 3-second polling
        # reduces them by an order of magnitude but not to zero.
        assert metrics["errors_per_hour_60s"] > 1.0
        assert metrics["error_reduction_factor"] > 4.0
        assert metrics["users_affected_60s"] >= metrics["users_affected_3s"]
        assert metrics["errors_per_hour_3s"] > 0.0

    def test_table12_schemes_comparable(self, ctx):
        metrics = run_experiment("table12", ctx).metrics
        # Sprite moves exactly the requested bytes while sharing.
        assert metrics["sprite_byte_ratio"] == pytest.approx(1.0, abs=0.1)
        assert metrics["sprite_rpc_ratio"] == pytest.approx(1.0, abs=0.1)
        # No scheme is dramatically worse (the paper's conclusion).
        assert metrics["modified_byte_ratio"] < 1.5
        assert metrics["token_byte_ratio"] < 2.0
        assert metrics["token_rpc_ratio"] < 2.0
