"""Unit tests for the at-most-once RPC transport (repro.fs.rpc).

The chaos suite (:mod:`tests.test_rpc_chaos`) runs full replays over
lossy channels; these tests pin down the individual mechanisms --
channel draw order, duplicate suppression, eviction semantics,
retransmission accounting -- one component at a time.
"""

from __future__ import annotations

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import RngStream
from repro.fs.client import ClientKernel
from repro.fs.config import ClusterConfig
from repro.fs.faults import FaultConfig
from repro.fs.rpc import (
    MAX_ATTEMPTS,
    BackoffPolicy,
    Channel,
    DedupCache,
    DedupStatus,
    Delivery,
    Message,
    ServerEndpoint,
)
from repro.fs.server import Server
from repro.fs.vm import VirtualMemory
from repro.sim import Engine


def make_rig(client_count=1, channel_rng=None, oracle=None, **fault_kwargs):
    """Engine + server + clients wired through the RPC transport."""
    config = ClusterConfig(
        client_count=client_count, faults=FaultConfig(**fault_kwargs)
    )
    engine = Engine()
    server = Server(config.server_memory, config.block_size)
    clients = []
    for client_id in range(client_count):
        vm = VirtualMemory(
            total_pages=config.client_page_count,
            preference_seconds=config.vm_preference,
            base_demand_pages=500,
            cache_floor_pages=config.min_cache_size // config.block_size,
        )
        rng = channel_rng.fork(f"client-{client_id}") if channel_rng else None
        client = ClientKernel(
            client_id, config, engine, server, vm,
            channel_rng=rng, oracle=oracle,
        )
        server.register_client(client)
        clients.append(client)
    return config, engine, server, clients


def msg(seq, client_id=0, op="name_operation", args=(), attempt=0):
    return Message(seq=seq, client_id=client_id, op=op, args=args, attempt=attempt)


class TestChannel:
    def test_inert_channel_needs_no_rng(self):
        channel = Channel(FaultConfig(), rng=None)
        assert not channel.lossy
        outcome, copies, delay = channel.transmit(msg(0))
        assert outcome is Delivery.DELIVERED
        assert copies == 0 and delay == 0.0

    def test_lossy_channel_requires_rng(self):
        with pytest.raises(SimulationError, match="needs an RNG"):
            Channel(FaultConfig(message_loss_rate=0.5), rng=None)

    def test_deterministic_across_constructions(self):
        faults = FaultConfig(
            message_loss_rate=0.3,
            message_duplicate_rate=0.2,
            message_reorder_rate=0.1,
            message_delay_rate=0.2,
        )
        runs = []
        for _ in range(2):
            channel = Channel(faults, RngStream.root(42).fork("chan"))
            runs.append([channel.transmit(msg(i)) for i in range(200)])
        assert runs[0] == runs[1]

    def test_total_loss_drops_everything(self):
        channel = Channel(
            FaultConfig(message_loss_rate=1.0), RngStream.root(1).fork("c")
        )
        for i in range(50):
            outcome, _, _ = channel.transmit(msg(i))
            assert outcome is Delivery.DROPPED
        assert channel.messages_dropped == 50

    def test_straggler_surfaces_on_drain_once(self):
        channel = Channel(
            FaultConfig(message_reorder_rate=1.0), RngStream.root(1).fork("c")
        )
        held = msg(7)
        outcome, _, _ = channel.transmit(held)
        assert outcome is Delivery.STRAGGLED
        assert channel.drain() == [held]
        assert channel.drain() == []

    def test_duplicate_rate_delivers_extra_copy(self):
        channel = Channel(
            FaultConfig(message_duplicate_rate=1.0), RngStream.root(1).fork("c")
        )
        outcome, copies, _ = channel.transmit(msg(0))
        assert outcome is Delivery.DELIVERED
        assert copies == 1
        assert channel.messages_duplicated == 1

    def test_delay_books_positive_latency(self):
        channel = Channel(
            FaultConfig(message_delay_rate=1.0, message_delay_mean=0.5),
            RngStream.root(1).fork("c"),
        )
        _, _, delay = channel.transmit(msg(0))
        assert delay > 0.0
        assert channel.delay_seconds == pytest.approx(delay)

    def test_reply_leg_draws_loss_and_delay_only(self):
        # Duplicate/reorder rates at 1.0 must not affect replies.
        channel = Channel(
            FaultConfig(message_duplicate_rate=1.0, message_reorder_rate=1.0),
            RngStream.root(1).fork("c"),
        )
        delivered, delay = channel.transmit_reply()
        assert delivered and delay == 0.0


class TestBackoffPolicy:
    def test_attempts_for_wait_known_values(self):
        # Default backoff: 0.1, 0.2, 0.4, ... capped at 5.0.  One
        # attempt lands immediately; each delay buys one more.
        policy = BackoffPolicy.from_config(FaultConfig())
        assert policy.attempts_for_wait(0.05) == 1
        assert policy.attempts_for_wait(0.5) == 3
        for shorter, longer in ((0.05, 0.5), (0.5, 7.0), (7.0, 60.0)):
            assert policy.attempts_for_wait(shorter) <= policy.attempts_for_wait(
                longer
            )

    def test_next_delay_doubles_to_cap(self):
        policy = BackoffPolicy(initial=1.0, factor=2.0, cap=3.0)
        assert policy.next_delay(None) == 1.0
        assert policy.next_delay(1.0) == 2.0
        assert policy.next_delay(2.0) == 3.0
        assert policy.next_delay(3.0) == 3.0


class TestDedupCache:
    def test_new_then_duplicate(self):
        cache = DedupCache()
        assert cache.classify(0, 0) == (DedupStatus.NEW, None)
        cache.record(0, 0, "reply-0")
        assert cache.classify(0, 0) == (DedupStatus.DUPLICATE, "reply-0")
        assert cache.replayed == 1

    def test_clients_are_independent(self):
        cache = DedupCache()
        cache.record(0, 5, "a")
        assert cache.classify(1, 5) == (DedupStatus.NEW, None)

    def test_retention_must_be_positive(self):
        with pytest.raises(SimulationError):
            DedupCache(retention=0)

    def test_evicted_seq_is_stale_not_replayed(self):
        """The satellite-6 regression: an arrival below the high-water
        mark whose reply aged out must be dropped silently -- replaying
        any retained reply would answer the wrong request."""
        cache = DedupCache(retention=2)
        for seq in range(5):
            assert cache.classify(0, seq)[0] is DedupStatus.NEW
            cache.record(0, seq, f"reply-{seq}")
        assert cache.evictions == 3
        # Seqs 3 and 4 are retained; 0-2 were evicted.
        status, reply = cache.classify(0, 1)
        assert status is DedupStatus.STALE
        assert reply is None
        assert cache.stale_dropped == 1
        # The retained ones still replay their own replies.
        assert cache.classify(0, 4) == (DedupStatus.DUPLICATE, "reply-4")

    def test_forget_client_resets_sequence_space(self):
        cache = DedupCache()
        cache.record(0, 9, "r")
        cache.forget_client(0)
        assert cache.classify(0, 0) == (DedupStatus.NEW, None)


class TestServerEndpoint:
    def test_attach_is_shared_per_server(self):
        _, _, server, clients = make_rig(client_count=2)
        assert clients[0].transport.endpoint is clients[1].transport.endpoint
        assert server.rpc_endpoint is clients[0].transport.endpoint

    def test_duplicate_is_suppressed_and_replayed(self):
        _, _, server, (client,) = make_rig()
        endpoint = server.rpc_endpoint
        request = msg(0, op="revalidate_file", args=(1,))
        answered, reply = endpoint.receive(0.0, request)
        assert answered
        rpcs_after_first = server.counters.rpc_count
        answered_again, replayed = endpoint.receive(0.0, request)
        assert answered_again and replayed == reply
        # The duplicate did NOT re-execute: no new server RPC.
        assert server.counters.rpc_count == rpcs_after_first
        assert server.counters.duplicate_rpcs_suppressed == 1
        assert server.counters.rpc_replies_replayed == 1

    def test_stale_arrival_is_dropped_without_execution(self):
        _, _, server, (client,) = make_rig()
        endpoint = server.rpc_endpoint
        endpoint.dedup.retention = 1
        for seq in range(3):
            endpoint.receive(0.0, msg(seq, op="name_operation"))
        rpcs = server.counters.rpc_count
        answered, reply = endpoint.receive(0.0, msg(0, op="name_operation"))
        assert not answered and reply is None
        assert server.counters.rpc_count == rpcs  # nothing re-executed
        assert server.counters.stale_rpcs_dropped == 1
        assert server.counters.dedup_evictions == 2

    def test_eviction_counter_books_deltas(self):
        _, _, server, (client,) = make_rig()
        endpoint = server.rpc_endpoint
        endpoint.dedup.retention = 2
        for seq in range(5):
            endpoint.receive(0.0, msg(seq, op="name_operation"))
        assert server.counters.dedup_evictions == 3


class TestRpcTransport:
    def test_inert_transport_books_nothing(self):
        _, _, server, (client,) = make_rig()
        client.open_file(0.0, 1, will_write=False)
        client.read(1.0, 1, 0, 4096)
        counters = client.counters
        assert counters.rpc_messages_sent == 0
        assert counters.rpc_retransmissions == 0
        assert counters.rpc_replies_lost == 0
        assert counters.rpc_delay_seconds == 0.0
        assert counters.stall_seconds == 0.0

    def test_lossy_transport_retransmits_and_stalls(self):
        _, _, server, (client,) = make_rig(
            channel_rng=RngStream.root(3), message_loss_rate=0.5
        )
        for i in range(20):
            client.open_file(float(i), i, will_write=False)
        counters = client.counters
        assert counters.rpc_messages_sent > 40  # requests + replies + resends
        assert counters.rpc_retransmissions > 0
        assert counters.stall_seconds > 0.0
        # Every open still executed exactly once.
        assert server.counters.open_rpcs == 20

    def test_total_loss_still_terminates_and_executes(self):
        _, _, server, (client,) = make_rig(
            channel_rng=RngStream.root(3), message_loss_rate=1.0
        )
        client.open_file(0.0, 1, will_write=False)
        assert server.counters.open_rpcs == 1
        assert client.counters.rpc_retransmissions == MAX_ATTEMPTS - 1

    def test_lost_reply_is_not_a_second_execution(self):
        # Loss hits requests and replies alike; duplicate suppression
        # must keep executions at exactly one per call regardless.
        _, _, server, (client,) = make_rig(
            channel_rng=RngStream.root(11),
            message_loss_rate=0.4,
            message_duplicate_rate=0.3,
            message_reorder_rate=0.2,
        )
        for i in range(50):
            client.transport.call(float(i), "name_operation")
        # Stragglers may still be queued; what executed must match the
        # calls exactly (naming RPCs only in this test).
        assert server.counters.naming_rpcs == 50
        assert client.counters.rpc_replies_lost > 0

    def test_outage_resend_loop_matches_policy(self):
        _, _, _, (client,) = make_rig()
        assert client.transport.outage_resend_loop(0.5) == 3
