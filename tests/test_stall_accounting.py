"""Stall-time accounting: the overlap audit pinned down.

``stall_seconds`` is the total process-seconds a client spent waiting
for the server; ``rpc_delay_seconds`` is the subset of that caused by
the lossy channel delaying packets in flight.  They overlap by
construction -- every second of channel delay is booked in *both* --
so no consumer may ever add the two.  These tests pin the containment
on synthetic lossy runs and exercise the non-overlapping split
(:attr:`ClientCounters.backoff_stall_seconds`).
"""

from __future__ import annotations

from repro.common.rng import RngStream
from repro.fs.client import ClientKernel
from repro.fs.config import ClusterConfig
from repro.fs.counters import ClientCounters
from repro.fs.faults import FaultConfig
from repro.fs.server import Server
from repro.fs.vm import VirtualMemory
from repro.sim import Engine


def make_client(seed=7, **fault_kwargs):
    """One client wired to a server through a lossy channel."""
    config = ClusterConfig(client_count=1, faults=FaultConfig(**fault_kwargs))
    engine = Engine()
    server = Server(config.server_memory, config.block_size)
    vm = VirtualMemory(
        total_pages=config.client_page_count,
        preference_seconds=config.vm_preference,
        base_demand_pages=500,
        cache_floor_pages=config.min_cache_size // config.block_size,
    )
    client = ClientKernel(
        0, config, engine, server, vm,
        channel_rng=RngStream.root(seed).fork("channel"),
    )
    server.register_client(client)
    return client


def drive(client, ops=40):
    """A burst of opens/reads/writes/closes, all crossing the channel."""
    now = 0.0
    for i in range(ops):
        now += 1.0
        file_id = 100 + i
        client.open_file(now, file_id, True)
        client.write(now, file_id, 0, 8192)
        client.read(now, file_id, 0, 4096)
        client.close_file(now, file_id, True, fsync=True)
    return now


class TestStallOverlap:
    def test_delay_only_channel_stall_equals_rpc_delay(self):
        """With channel delay as the only fault, every stalled second is
        a delayed-packet second: the two counters coincide exactly, so
        summing them would report exactly double the true cost."""
        client = make_client(
            message_delay_rate=1.0, message_delay_mean=0.05
        )
        drive(client)
        counters = client.counters
        assert counters.rpc_delay_seconds > 0.0
        assert counters.stall_seconds == counters.rpc_delay_seconds
        assert counters.backoff_stall_seconds == 0.0

    def test_lossy_channel_books_backoff_beyond_delay(self):
        """Packet loss adds retransmission backoff, which lands in
        stall_seconds only; the split is exact and non-overlapping."""
        client = make_client(
            message_loss_rate=0.3,
            message_delay_rate=0.5,
            message_delay_mean=0.05,
        )
        drive(client)
        counters = client.counters
        assert counters.rpc_retransmissions > 0
        assert counters.rpc_delay_seconds > 0.0
        assert counters.stall_seconds > counters.rpc_delay_seconds
        assert counters.backoff_stall_seconds > 0.0
        # The decomposition is exact: delay + backoff == total stall.
        assert counters.backoff_stall_seconds == (
            counters.stall_seconds - counters.rpc_delay_seconds
        )

    def test_inert_channel_books_nothing(self):
        client = make_client()
        drive(client)
        counters = client.counters
        assert counters.stall_seconds == 0.0
        assert counters.rpc_delay_seconds == 0.0
        assert counters.backoff_stall_seconds == 0.0

    def test_backoff_stall_never_negative(self):
        counters = ClientCounters()
        counters.rpc_delay_seconds = 5.0  # corrupt: delay without stall
        assert counters.backoff_stall_seconds == 0.0
