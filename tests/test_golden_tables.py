"""Golden-table regression tests.

Every experiment's rendered table (hashed) and exact metric values are
pinned in ``tests/golden/experiments_scale0.05_seed1991.json``.  The
simulation is deterministic, so any drift -- a reordered event, an RNG
draw added on a hot path, a counter counted twice -- shows up here as a
byte-level mismatch even when the numbers still look plausible.

After an *intentional* behaviour change, regenerate with::

    pytest tests/test_golden_tables.py --regen-golden

and review the JSON diff like any other code change.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments import EXPERIMENT_IDS, run_experiment

GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "experiments_scale0.05_seed1991.json"
)


def _entry(result) -> dict:
    return {
        "title": result.title,
        "rendered_sha256": hashlib.sha256(
            result.rendered.encode("utf-8")
        ).hexdigest(),
        "metrics": {key: result.metrics[key] for key in sorted(result.metrics)},
    }


@pytest.fixture(scope="module")
def golden(request, experiment_context):
    """The golden file contents; rewritten first under ``--regen-golden``."""
    if request.config.getoption("--regen-golden"):
        document = {
            "scale": experiment_context.scale,
            "seed": experiment_context.seed,
            "experiments": {
                experiment_id: _entry(
                    run_experiment(experiment_id, experiment_context)
                )
                for experiment_id in EXPERIMENT_IDS
            },
        }
        GOLDEN_PATH.write_text(
            json.dumps(document, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_golden_covers_every_experiment(golden):
    assert sorted(golden["experiments"]) == sorted(EXPERIMENT_IDS), (
        "experiment registry and golden file disagree; run "
        "pytest tests/test_golden_tables.py --regen-golden"
    )


def test_golden_context_matches_fixture(golden, experiment_context):
    assert golden["scale"] == experiment_context.scale
    assert golden["seed"] == experiment_context.seed


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_experiment_matches_golden(experiment_id, golden, experiment_context):
    expected = golden["experiments"][experiment_id]
    actual = _entry(run_experiment(experiment_id, experiment_context))
    assert actual["metrics"] == expected["metrics"], (
        f"{experiment_id}: metrics drifted from golden; if intentional, "
        "regenerate with --regen-golden and review the diff"
    )
    assert actual["rendered_sha256"] == expected["rendered_sha256"], (
        f"{experiment_id}: rendered table drifted from golden (metrics "
        "unchanged -- formatting or row-order change?)"
    )
    assert actual["title"] == expected["title"]
