"""Tests for the columnar trace layer (repro.trace.columnar).

The load-bearing property is byte-identity with the classic record-list
path: materializing the columnar form must reproduce exactly the
records (values *and* types) the old emit-sort-filter pipeline built,
and streaming consumption must never hold a whole trace in memory.
"""

import tracemalloc

import pytest

from repro.common.errors import ConfigError
from repro.trace.columnar import (
    RECORD_CLASSES,
    ColumnarTrace,
    ColumnarTraceBuilder,
)
from repro.trace.records import (
    AccessMode,
    CloseRecord,
    DirectoryReadRecord,
    OpenRecord,
    ReadRunRecord,
    WriteRunRecord,
)
from repro.workload import generate_trace
from repro.workload.profiles import STANDARD_PROFILES


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(
        STANDARD_PROFILES[0], seed=1991, scale=0.05, client_count=4
    )


class TestRoundTrip:
    def test_generated_trace_carries_equivalent_columnar(self, small_trace):
        assert small_trace.columnar is not None
        rebuilt = small_trace.columnar.materialize()
        assert rebuilt == small_trace.records

    def test_materialized_types_are_exact(self, small_trace):
        for record in small_trace.columnar.materialize()[:2000]:
            assert type(record.time) is float
            assert type(record.file_id) is int
            if isinstance(record, OpenRecord):
                assert isinstance(record.mode, AccessMode)
                assert type(record.migrated) is bool

    def test_from_records_round_trip(self, small_trace):
        records = small_trace.records[:500]
        columnar = ColumnarTrace.from_records(records)
        assert columnar.materialize() == records

    def test_payload_round_trip(self, small_trace):
        payload = small_trace.columnar.to_payload()
        back = ColumnarTrace.from_payload(payload)
        assert back.materialize() == small_trace.records

    def test_iter_chunks_matches_materialize(self, small_trace):
        streamed = []
        for chunk in small_trace.columnar.iter_chunks(chunk_size=777):
            assert len(chunk) <= 777
            streamed.extend(chunk)
        assert streamed == small_trace.records

    def test_iter_records_matches_materialize(self, small_trace):
        assert list(small_trace.columnar.iter_records(1024)) == (
            small_trace.records
        )

    def test_bad_chunk_size_rejected(self, small_trace):
        with pytest.raises(ValueError):
            next(small_trace.columnar.iter_chunks(0))


class TestBuilderSeal:
    def test_seal_sorts_stably_and_filters_window(self):
        builder = ColumnarTraceBuilder()
        builder.append(
            OpenRecord,
            (5.0, 0, 1, 7, 1, 0, 0, AccessMode.READ, 0, False),
        )
        builder.append(
            CloseRecord, (99.0, 0, 1, 7, 1, 0, 0, 0, 0, False)
        )
        # Same timestamp as the open: emission order must win the tie.
        builder.append(
            ReadRunRecord, (5.0, 0, 1, 7, 1, 0, 0, 100, False)
        )
        sealed = builder.seal(duration=50.0)
        records = sealed.materialize()
        assert [type(r) for r in records] == [OpenRecord, ReadRunRecord]
        assert records[0].time == records[1].time == 5.0

    def test_emission_order_records_preserves_append_order(self):
        builder = ColumnarTraceBuilder()
        builder.append(
            CloseRecord, (9.0, 0, 1, 7, 1, 0, 0, 0, 0, False)
        )
        builder.append(
            OpenRecord,
            (1.0, 0, 2, 8, 1, 0, 0, AccessMode.WRITE, 0, False),
        )
        kinds = [type(r) for r in builder.emission_order_records()]
        assert kinds == [CloseRecord, OpenRecord]


class TestRemap:
    def test_remap_strides_ids_and_shifts_clients(self, small_trace):
        groups, group, base = 4, 1, 40
        remapped = small_trace.columnar.remap_group(group, groups, base)
        originals = small_trace.records
        for before, after in zip(originals, remapped.materialize()):
            assert after.time == before.time
            assert after.client_id == before.client_id + base
            if before.file_id >= 0:
                assert after.file_id == before.file_id * groups + group
                assert after.file_id % groups == group
            else:
                assert after.file_id == before.file_id
            if hasattr(before, "open_id"):
                assert after.open_id == before.open_id * groups + group

    def test_remap_rejects_bad_group(self, small_trace):
        with pytest.raises(ValueError):
            small_trace.columnar.remap_group(4, 4, 0)

    def test_max_file_id(self, small_trace):
        expected = max(r.file_id for r in small_trace.records)
        assert small_trace.columnar.max_file_id() == expected

    def test_max_file_id_empty(self):
        assert ColumnarTraceBuilder().seal().max_file_id() == -1


class TestMerge:
    def test_merge_subset_restriction(self):
        """Merging any subset equals the full merge restricted to it --
        the property partitioned replay's dispatch order rests on."""
        parts = []
        for rank in range(3):
            builder = ColumnarTraceBuilder()
            for i in range(50):
                builder.append(
                    DirectoryReadRecord,
                    (float(i % 7), 0, -1, rank + 1, rank, 256),
                )
            parts.append(builder.seal())
        full = ColumnarTrace.merge(parts).materialize()
        for subset in ([0], [1], [2], [0, 2], [1, 2], [0, 1]):
            merged = ColumnarTrace.merge(
                [parts[i] for i in subset], ranks=subset
            ).materialize()
            restricted = [
                r for r in full if r.user_id - 1 in subset
            ]
            assert merged == restricted

    def test_merge_empty_and_single(self, small_trace):
        assert len(ColumnarTrace.merge([])) == 0
        assert ColumnarTrace.merge([small_trace.columnar]) is (
            small_trace.columnar
        )

    def test_merge_rank_mismatch(self, small_trace):
        with pytest.raises(ValueError):
            ColumnarTrace.merge([small_trace.columnar], ranks=[0, 1])


class TestStreamingMemory:
    def test_iter_records_peak_is_bounded(self, small_trace):
        """Streaming a trace must allocate far less than materializing
        it: the chunked iterator's peak is one chunk, not a day."""
        columnar = small_trace.columnar
        count = len(columnar)
        assert count > 5_000  # the comparison below needs a real trace

        tracemalloc.start()
        full = columnar.materialize()
        _, full_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        del full

        chunk = 1024
        tracemalloc.start()
        seen = 0
        for record in columnar.iter_records(chunk):
            seen += 1
        _, stream_peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()

        assert seen == count
        # One ~1k-record chunk vs tens of thousands of records: even
        # with iterator overhead the streaming peak must stay well
        # under half of the materialized allocation.
        assert stream_peak < full_peak / 2

    def test_record_count_without_materialization(self):
        trace = generate_trace(
            STANDARD_PROFILES[0],
            seed=3,
            scale=0.02,
            client_count=4,
            materialize=False,
        )
        assert trace.records == []
        assert trace.columnar is not None
        assert trace.record_count == len(trace.columnar) > 0
        assert sum(1 for _ in trace.iter_records()) == trace.record_count


def test_record_classes_cover_every_registered_kind():
    """The columnar kind table must stay in sync with the record
    registry (appending new kinds is fine; dropping or reordering
    breaks stored payloads)."""
    from repro.trace.records import TraceRecord

    assert set(RECORD_CLASSES) == set(TraceRecord._registry.values())
