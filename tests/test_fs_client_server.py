"""Tests for the client kernel, server, and their consistency protocol."""

import pytest

from repro.common.units import MB
from repro.fs.client import ClientKernel
from repro.fs.config import ClusterConfig
from repro.fs.server import Server
from repro.fs.servercache import ServerCache
from repro.fs.vm import VirtualMemory
from repro.sim import Engine


def make_rig(client_count=2, **config_kwargs):
    """A small engine + server + N clients rig."""
    config = ClusterConfig(client_count=client_count, **config_kwargs)
    engine = Engine()
    server = Server(config.server_memory, config.block_size)
    clients = []
    for client_id in range(client_count):
        vm = VirtualMemory(
            total_pages=config.client_page_count,
            preference_seconds=config.vm_preference,
            base_demand_pages=500,
            cache_floor_pages=config.min_cache_size // config.block_size,
        )
        client = ClientKernel(client_id, config, engine, server, vm)
        server.register_client(client)
        clients.append(client)

    def fan_out(file_id, cacheable):
        for client in clients:
            client.set_cacheability(file_id, cacheable)

    server.on_cacheability_change = fan_out
    return config, engine, server, clients


class TestClientReadsAndWrites:
    def test_read_miss_then_hit(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=False)
        client.read(1.0, 1, 0, 4096)
        assert client.counters.cache_read_misses == 1
        client.read(2.0, 1, 0, 4096)
        assert client.counters.cache_read_ops == 2
        assert client.counters.cache_read_misses == 1  # second is a hit

    def test_read_spanning_blocks(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=False)
        client.read(1.0, 1, 0, 10_000)  # 3 blocks
        assert client.counters.cache_read_ops == 3
        assert client.counters.cache_read_misses == 3
        assert client.counters.cache_read_miss_bytes == 10_000

    def test_write_creates_dirty_blocks(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=True)
        client.write(1.0, 1, 0, 8192)
        assert client.cache.dirty_count == 2
        assert client.counters.cache_write_bytes == 8192
        assert client.counters.bytes_written_to_server == 0  # delayed

    def test_full_block_write_needs_no_fetch(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=True)
        client.write(1.0, 1, 0, 4096)
        assert client.counters.write_fetch_ops == 0

    def test_partial_overwrite_of_nonresident_block_fetches(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=True)
        # Write into the middle of a block that is not resident.
        client.write(1.0, 1, 100, 50)
        assert client.counters.write_fetch_ops == 1
        assert client.counters.write_fetch_bytes == 4096

    def test_append_from_block_start_needs_no_fetch(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=True)
        client.write(1.0, 1, 0, 100)  # partial but from block start
        assert client.counters.write_fetch_ops == 0

    def test_migrated_accounting(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=False)
        client.read(1.0, 1, 0, 4096, migrated=True)
        assert client.counters.migrated_read_ops == 1
        assert client.counters.migrated_read_misses == 1
        client.write(2.0, 1, 0, 4096, migrated=True)
        assert client.counters.migrated_write_ops == 1


class TestDelayedWrites:
    def test_daemon_writes_back_after_30s(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=True)
        client.write(1.0, 1, 0, 4096)
        engine.run_until(20.0)
        assert client.counters.bytes_written_to_server == 0
        engine.run_until(40.0)
        assert client.counters.bytes_written_to_server == 4096
        assert client.counters.blocks_cleaned_delay == 1
        assert client.cache.dirty_count == 0

    def test_whole_file_flushed_together(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=True)
        client.write(1.0, 1, 0, 4096)
        engine.run_until(25.0)
        client.write(25.5, 1, 4096, 4096)  # fresh block, same file
        engine.run_until(36.0)  # first scan after block 1 turns 30s old
        # The first block hit 30s; the second (only ~10s dirty) goes
        # with it because the whole file is flushed together.
        assert client.counters.blocks_cleaned_delay == 2

    def test_fsync_writes_through_immediately(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=True)
        client.write(1.0, 1, 0, 4096)
        client.fsync_file(1.5, 1)
        assert client.counters.blocks_cleaned_fsync == 1
        assert client.counters.bytes_written_to_server == 4096

    def test_write_through_config(self):
        _, engine, server, (client, _) = make_rig(write_through=True)
        client.open_file(0.0, 1, will_write=True)
        client.write(1.0, 1, 0, 4096)
        assert client.counters.bytes_written_to_server == 4096
        assert client.cache.dirty_count == 0

    def test_delete_absorbs_dirty_data(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=True)
        client.write(1.0, 1, 0, 4096)
        client.close_file(1.5, 1, wrote=True)
        client.delete_file(2.0, 1)
        engine.run_until(60.0)
        assert client.counters.bytes_written_to_server == 0
        assert client.counters.dirty_bytes_discarded == 4096

    def test_writeback_extent_rule(self):
        """Appending 100 bytes writes back only the block prefix."""
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=True)
        client.write(1.0, 1, 0, 100)
        engine.run_until(40.0)
        assert client.counters.bytes_written_to_server == 100

    def test_fetched_block_writes_back_whole(self):
        _, engine, server, (client, _) = make_rig()
        client.open_file(0.0, 1, will_write=False)
        client.read(1.0, 1, 0, 4096)
        client.write(2.0, 1, 100, 10)  # dirty a fetched block
        engine.run_until(40.0)
        assert client.counters.bytes_written_to_server == 4096


class TestConsistencyProtocol:
    def test_recall_on_cross_client_open(self):
        _, engine, server, (a, b) = make_rig()
        a.open_file(0.0, 1, will_write=True)
        a.write(1.0, 1, 0, 4096)
        a.close_file(1.5, 1, wrote=True)
        # B opens before A's delayed write fires: the server recalls.
        b.open_file(5.0, 1, will_write=False)
        assert server.counters.recalls_issued == 1
        assert a.counters.blocks_cleaned_recall == 1
        assert a.cache.dirty_count == 0

    def test_no_recall_after_writeback(self):
        _, engine, server, (a, b) = make_rig()
        a.open_file(0.0, 1, will_write=True)
        a.write(1.0, 1, 0, 4096)
        a.close_file(1.5, 1, wrote=True)
        engine.run_until(60.0)  # delayed write completes
        b.open_file(61.0, 1, will_write=False)
        assert server.counters.recalls_issued == 0

    def test_concurrent_write_sharing_disables_caching(self):
        _, engine, server, (a, b) = make_rig()
        a.open_file(0.0, 1, will_write=True)
        b.open_file(1.0, 1, will_write=False)
        assert server.counters.concurrent_write_sharing_opens == 1
        # Both clients now bypass their caches for file 1.
        b.read(2.0, 1, 0, 100)
        assert b.counters.shared_bytes_read == 100
        assert b.counters.cache_read_ops == 0
        a.write(3.0, 1, 0, 100)
        assert a.counters.shared_bytes_written == 100

    def test_cacheable_again_after_all_close(self):
        _, engine, server, (a, b) = make_rig()
        a.open_file(0.0, 1, will_write=True)
        b.open_file(1.0, 1, will_write=False)
        a.close_file(2.0, 1, wrote=True)
        b.read(3.0, 1, 0, 100)
        assert b.counters.shared_bytes_read == 100  # still uncacheable
        b.close_file(4.0, 1, wrote=False)
        # Everyone closed: caching re-enabled.
        b.open_file(5.0, 1, will_write=False)
        b.read(6.0, 1, 0, 100)
        assert b.counters.cache_read_ops == 1

    def test_stale_cache_flushed_on_version_change(self):
        _, engine, server, (a, b) = make_rig()
        b.open_file(0.0, 1, will_write=False)
        b.read(1.0, 1, 0, 4096)
        b.close_file(2.0, 1, wrote=False)
        # A writes a new version.
        a.open_file(10.0, 1, will_write=True)
        a.write(11.0, 1, 0, 4096)
        a.close_file(12.0, 1, wrote=True)
        engine.run_until(60.0)
        # B reopens: its cached block is stale and must be refetched.
        b.open_file(61.0, 1, will_write=False)
        b.read(62.0, 1, 0, 4096)
        assert b.counters.cache_read_misses == 2

    def test_own_write_does_not_invalidate_self(self):
        _, engine, server, (a, _) = make_rig()
        a.open_file(0.0, 1, will_write=True)
        a.write(1.0, 1, 0, 4096)
        a.close_file(2.0, 1, wrote=True)
        a.open_file(3.0, 1, will_write=False)
        a.read(4.0, 1, 0, 4096)
        assert a.counters.cache_read_misses == 0  # own data still valid

    def test_close_with_fsync_prevents_recall(self):
        _, engine, server, (a, b) = make_rig()
        a.open_file(0.0, 1, will_write=True)
        a.write(1.0, 1, 0, 4096)
        a.close_file(1.5, 1, wrote=True, fsync=True)
        b.open_file(2.0, 1, will_write=False)
        assert server.counters.recalls_issued == 0
        assert a.counters.blocks_cleaned_fsync == 1


class TestServer:
    def test_double_register_raises(self):
        from repro.common.errors import ConsistencyError

        _, engine, server, (a, _) = make_rig()
        with pytest.raises(ConsistencyError):
            server.register_client(a)

    def test_rpc_counting(self):
        _, engine, server, (a, _) = make_rig()
        a.open_file(0.0, 1, will_write=False)
        a.read(1.0, 1, 0, 4096)
        a.close_file(2.0, 1, wrote=False)
        assert server.counters.open_rpcs == 1
        assert server.counters.block_reads == 1
        assert server.counters.rpc_count == 3  # open + fetch + close

    def test_invalidate_file_clears_state(self):
        _, engine, server, (a, _) = make_rig()
        a.open_file(0.0, 1, will_write=True)
        a.close_file(1.0, 1, wrote=True)
        server.invalidate_file(1)
        state = server.state_of(1)
        assert state.last_writer == -1


class TestServerCache:
    def test_hit_miss_accounting(self):
        cache = ServerCache(capacity_bytes=4096 * 4, block_size=4096)
        assert not cache.access(1, 0, now=1.0)
        assert cache.access(1, 0, now=2.0)
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_at_capacity(self):
        cache = ServerCache(capacity_bytes=4096 * 2, block_size=4096)
        cache.access(1, 0, 1.0)
        cache.access(1, 1, 2.0)
        cache.access(1, 2, 3.0)  # evicts (1, 0)
        assert len(cache) == 2
        assert not cache.access(1, 0, 4.0)  # miss again

    def test_invalidate_file(self):
        cache = ServerCache(capacity_bytes=MB, block_size=4096)
        cache.access(1, 0, 1.0)
        cache.access(2, 0, 1.0)
        assert cache.invalidate_file(1) == 1
        assert len(cache) == 1

    def test_bad_geometry_raises(self):
        from repro.common.errors import CacheError

        with pytest.raises(CacheError):
            ServerCache(capacity_bytes=0, block_size=4096)
