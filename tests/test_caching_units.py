"""Unit tests for the caching post-processing with hand-built counters.

The cluster-driven integration tests check plausibility; these check
the exact per-machine-day arithmetic of Tables 4-9 on synthetic
counter values.
"""

import pytest

from repro.caching import (
    MachineDay,
    compute_cache_sizes,
    compute_cleaning,
    compute_effectiveness,
    compute_replacement,
    compute_server_traffic,
    compute_traffic_sources,
    machine_days,
)
from repro.caching.aggregate import ratio
from repro.fs.counters import ClientCounters, CounterSnapshot


def day(client_id=0, trace_index=0, snapshots=None, **counter_values):
    counters = ClientCounters()
    counters.file_open_ops = 100  # active by default
    for name, value in counter_values.items():
        setattr(counters, name, value)
    return MachineDay(
        client_id=client_id,
        trace_index=trace_index,
        counters=counters,
        snapshots=snapshots or [],
    )


class TestRatioGuard:
    def test_normal(self):
        assert ratio(1.0, 4.0) == 0.25

    def test_zero_denominator_is_none(self):
        assert ratio(1.0, 0.0) is None

    def test_zero_numerator_is_zero(self):
        assert ratio(0.0, 4.0) == 0.0


class TestMachineDays:
    def test_idle_machines_screened(self, cluster_result):
        days = machine_days([cluster_result], only_active=False)
        idle = [d for d in days if d.counters.file_open_ops < 20]
        active = machine_days([cluster_result])
        assert len(active) == len(days) - len(idle)

    def test_trace_index_assigned(self, cluster_result):
        days = machine_days([cluster_result, cluster_result])
        assert {d.trace_index for d in days} <= {0, 1}


class TestEffectivenessArithmetic:
    def test_read_miss_ratio(self):
        result = compute_effectiveness(
            [day(cache_read_ops=100, cache_read_misses=40)]
        )
        assert result.read_miss.mean == pytest.approx(0.40)

    def test_per_machine_day_average_not_pooled(self):
        # One machine at 10% and one at 50%: per-machine-day mean is
        # 30% even though the pooled ratio would be different.
        days = [
            day(client_id=0, cache_read_ops=1000, cache_read_misses=100),
            day(client_id=1, cache_read_ops=10, cache_read_misses=5),
        ]
        result = compute_effectiveness(days)
        assert result.read_miss.mean == pytest.approx(0.30)

    def test_machines_without_ops_excluded(self):
        days = [
            day(client_id=0, cache_read_ops=100, cache_read_misses=50),
            day(client_id=1, cache_read_ops=0, cache_read_misses=0),
        ]
        result = compute_effectiveness(days)
        assert result.read_miss.count == 1

    def test_writeback_ratio_can_exceed_one(self):
        result = compute_effectiveness(
            [day(cache_write_bytes=100, bytes_written_to_server=150)]
        )
        assert result.writeback_traffic.mean == pytest.approx(1.5)

    def test_migrated_split_independent(self):
        result = compute_effectiveness(
            [day(cache_read_ops=100, cache_read_misses=50,
                 migrated_read_ops=10, migrated_read_misses=1)]
        )
        assert result.read_miss.mean == pytest.approx(0.5)
        assert result.migrated_read_miss.mean == pytest.approx(0.1)


class TestTrafficArithmetic:
    def test_shares(self):
        result = compute_traffic_sources(
            [day(file_bytes_read=500, file_bytes_written=300,
                 paging_code_bytes=100,
                 paging_backing_bytes_read=50,
                 paging_backing_bytes_written=50)]
        )
        assert result.shares["cached_file_reads"].mean == pytest.approx(0.5)
        assert result.paging_share.mean == pytest.approx(0.2)
        assert result.uncacheable_share.mean == pytest.approx(0.1)

    def test_shares_sum_to_one(self):
        result = compute_traffic_sources(
            [day(file_bytes_read=123, file_bytes_written=45,
                 shared_bytes_read=6, directory_bytes_read=7,
                 paging_code_bytes=89, paging_data_bytes=10,
                 paging_backing_bytes_read=11,
                 paging_backing_bytes_written=12)]
        )
        total = sum(stat.mean for stat in result.shares.values())
        assert total == pytest.approx(1.0)

    def test_zero_traffic_machine_skipped(self):
        result = compute_traffic_sources([day()])
        assert result.paging_share.count == 0


class TestServerTrafficArithmetic:
    def test_filter_ratio_global_vs_per_machine(self):
        days = [
            day(client_id=0, file_bytes_read=1000,
                cache_read_miss_bytes=100),
            day(client_id=1, file_bytes_read=100,
                cache_read_miss_bytes=90),
        ]
        result = compute_server_traffic(days)
        # Per-machine mean: (0.1 + 0.9) / 2 = 0.5.
        assert result.filter_ratio.mean == pytest.approx(0.5)
        # Global: 190 / 1100.
        global_ratio = result.global_server_bytes / result.global_raw_bytes
        assert global_ratio == pytest.approx(190 / 1100)

    def test_read_write_ratio(self):
        result = compute_server_traffic(
            [day(cache_read_miss_bytes=200, bytes_written_to_server=100)]
        )
        assert result.read_write_ratio.mean == pytest.approx(2.0)


class TestReplacementArithmetic:
    def test_shares_and_ages(self):
        result = compute_replacement(
            [day(blocks_replaced_for_file=80, blocks_replaced_for_vm=20,
                 replace_age_sum_file=80 * 600.0,
                 replace_age_sum_vm=20 * 1200.0)]
        )
        assert result.for_file_share.mean == pytest.approx(0.8)
        assert result.age_file_minutes.mean == pytest.approx(10.0)
        assert result.age_vm_minutes.mean == pytest.approx(20.0)

    def test_no_replacements_skipped(self):
        result = compute_replacement([day()])
        assert result.for_file_share.count == 0


class TestCleaningArithmetic:
    def test_shares_and_ages(self):
        result = compute_cleaning(
            [day(blocks_cleaned_delay=75, blocks_cleaned_fsync=15,
                 blocks_cleaned_recall=9, blocks_cleaned_vm=1,
                 clean_age_sum_delay=75 * 40.0)]
        )
        assert result.shares["30-second delay"].mean == pytest.approx(0.75)
        assert result.ages["30-second delay"].mean == pytest.approx(40.0)
        assert result.shares["Given to virtual memory"].mean == (
            pytest.approx(0.01)
        )

    def test_shares_sum_to_one(self):
        result = compute_cleaning(
            [day(blocks_cleaned_delay=3, blocks_cleaned_fsync=2,
                 blocks_cleaned_recall=1, blocks_cleaned_vm=4)]
        )
        total = sum(stat.mean for stat in result.shares.values())
        assert total == pytest.approx(1.0)


class TestCacheSizeWindows:
    def make_snapshots(self, sizes_and_opens):
        snapshots = []
        for index, (size, opens) in enumerate(sizes_and_opens):
            counters = ClientCounters()
            counters.cache_size_bytes = size
            counters.file_open_ops = opens
            snapshots.append(
                CounterSnapshot(time=index * 300.0, client_id=0,
                                counters=counters)
            )
        return snapshots

    def test_active_windows_only(self):
        # Three snapshots in the first 15-minute window, activity rising
        # -> the window counts; sizes span 1 MB.
        snaps = self.make_snapshots(
            [(1_000_000, 0), (1_500_000, 10), (2_000_000, 20)]
        )
        result = compute_cache_sizes([day(snapshots=snaps)])
        assert result.change_15min.count == 1
        assert result.change_15min.mean == pytest.approx(1_000_000)

    def test_idle_windows_skipped(self):
        snaps = self.make_snapshots(
            [(1_000_000, 5), (2_000_000, 5), (3_000_000, 5)]
        )  # open count never rises after the first snapshot
        result = compute_cache_sizes([day(snapshots=snaps)])
        # The first snapshot shows opens 0 -> 5 (activity), later ones
        # show no new opens; windows with no rise contribute nothing
        # beyond the first.
        assert result.change_15min.count <= 1

    def test_size_sampling_screens_idle(self):
        snaps = self.make_snapshots([(1_000_000, 0), (5_000_000, 0)])
        result = compute_cache_sizes([day(snapshots=snaps)])
        assert result.size.count == 0  # never active
