"""Unit and property tests for repro.common.rng."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.rng import RngStream


class TestDeterminism:
    def test_same_seed_same_sequence(self):
        a = RngStream.root(7)
        b = RngStream.root(7)
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = RngStream.root(7)
        b = RngStream.root(8)
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_deterministic(self):
        a = RngStream.root(7).fork("child")
        b = RngStream.root(7).fork("child")
        assert a.random() == b.random()

    def test_fork_does_not_consume_parent_state(self):
        parent = RngStream.root(7)
        before = RngStream.root(7)
        parent.fork("x")
        parent.fork("y")
        assert parent.random() == before.random()

    def test_fork_order_independent(self):
        root_a = RngStream.root(7)
        root_b = RngStream.root(7)
        x1 = root_a.fork("x")
        root_b.fork("y")
        x2 = root_b.fork("x")
        assert x1.random() == x2.random()

    def test_sibling_forks_are_independent(self):
        root = RngStream.root(7)
        values_a = [root.fork("a").random() for _ in range(1)]
        values_b = [root.fork("b").random() for _ in range(1)]
        assert values_a != values_b

    def test_nested_fork_distinct_from_flat(self):
        root = RngStream.root(7)
        nested = root.fork("a").fork("b")
        flat = root.fork("a/b")
        # Paths are the same string; they must agree (stable contract).
        assert nested.key == flat.key


class TestDistributions:
    def test_uniform_within_bounds(self):
        rng = RngStream.root(1)
        for _ in range(100):
            value = rng.uniform(2.0, 3.0)
            assert 2.0 <= value <= 3.0

    def test_randint_within_bounds(self):
        rng = RngStream.root(1)
        values = {rng.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_exponential_mean(self):
        rng = RngStream.root(2)
        values = [rng.exponential(10.0) for _ in range(5000)]
        assert 9.0 < sum(values) / len(values) < 11.0

    def test_exponential_rejects_bad_mean(self):
        with pytest.raises(ValueError):
            RngStream.root(1).exponential(0.0)

    def test_lognormal_median(self):
        rng = RngStream.root(3)
        values = sorted(rng.lognormal(math.log(100.0), 0.5) for _ in range(5001))
        median = values[len(values) // 2]
        assert 85 < median < 115

    def test_pareto_minimum_respected(self):
        rng = RngStream.root(4)
        for _ in range(100):
            assert rng.pareto(1.5, minimum=10.0) >= 10.0

    def test_pareto_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            RngStream.root(1).pareto(0.0)

    def test_poisson_zero_mean(self):
        assert RngStream.root(1).poisson(0.0) == 0

    def test_poisson_mean_small(self):
        rng = RngStream.root(5)
        values = [rng.poisson(3.0) for _ in range(5000)]
        assert 2.8 < sum(values) / len(values) < 3.2

    def test_poisson_mean_large_uses_normal_approx(self):
        rng = RngStream.root(6)
        values = [rng.poisson(500.0) for _ in range(500)]
        mean = sum(values) / len(values)
        assert 480 < mean < 520

    def test_poisson_rejects_negative(self):
        with pytest.raises(ValueError):
            RngStream.root(1).poisson(-1.0)

    def test_bernoulli_bounds(self):
        rng = RngStream.root(7)
        assert not any(rng.bernoulli(0.0) for _ in range(50))
        assert all(rng.bernoulli(1.0) for _ in range(50))

    def test_bernoulli_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            RngStream.root(1).bernoulli(1.5)

    def test_weighted_choice_respects_zero_weight(self):
        rng = RngStream.root(8)
        values = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert values == {"a"}


class TestZipf:
    def test_zipf_rank_in_range(self):
        rng = RngStream.root(9)
        for _ in range(200):
            assert 0 <= rng.zipf_rank(10) < 10

    def test_zipf_rank_zero_most_popular(self):
        rng = RngStream.root(10)
        counts = [0] * 5
        for _ in range(5000):
            counts[rng.zipf_rank(5)] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 2 * counts[4]

    def test_zipf_rejects_empty_population(self):
        with pytest.raises(ValueError):
            RngStream.root(1).zipf_rank(0)

    def test_zipf_single_item(self):
        assert RngStream.root(1).zipf_rank(1) == 0


@given(seed=st.integers(min_value=0, max_value=2**32), name=st.text(min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_fork_reproducible_property(seed, name):
    a = RngStream.root(seed).fork(name)
    b = RngStream.root(seed).fork(name)
    assert a.random() == b.random()


@given(
    low=st.integers(min_value=-1000, max_value=1000),
    span=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=50, deadline=None)
def test_randint_bounds_property(low, span):
    rng = RngStream.root(42)
    value = rng.randint(low, low + span)
    assert low <= value <= low + span
