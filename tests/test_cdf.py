"""Unit and property tests for repro.common.cdf."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.cdf import Cdf


class TestBasics:
    def test_empty_cdf(self):
        cdf = Cdf()
        assert cdf.count == 0
        assert cdf.fraction_at_or_below(10.0) == 0.0
        with pytest.raises(ValueError):
            cdf.value_at_fraction(0.5)

    def test_single_sample(self):
        cdf = Cdf()
        cdf.add(5.0)
        assert cdf.fraction_at_or_below(4.9) == 0.0
        assert cdf.fraction_at_or_below(5.0) == 1.0
        assert cdf.median() == 5.0

    def test_uniform_samples(self):
        cdf = Cdf()
        cdf.extend([1.0, 2.0, 3.0, 4.0])
        assert cdf.fraction_at_or_below(2.0) == pytest.approx(0.5)
        assert cdf.fraction_at_or_below(3.5) == pytest.approx(0.75)

    def test_weights(self):
        cdf = Cdf()
        cdf.add(1.0, weight=1.0)
        cdf.add(10.0, weight=3.0)
        assert cdf.fraction_at_or_below(1.0) == pytest.approx(0.25)
        assert cdf.total_weight == 4.0

    def test_zero_weight_ignored(self):
        cdf = Cdf()
        cdf.add(1.0, weight=0.0)
        assert cdf.count == 0

    def test_negative_weight_raises(self):
        with pytest.raises(ValueError):
            Cdf().add(1.0, weight=-2.0)

    def test_duplicate_values_merge(self):
        cdf = Cdf()
        cdf.extend([2.0, 2.0, 2.0])
        assert cdf.fraction_at_or_below(2.0) == 1.0
        assert len(cdf.points()) == 1

    def test_add_after_query_rebuilds(self):
        cdf = Cdf()
        cdf.add(1.0)
        assert cdf.fraction_at_or_below(1.0) == 1.0
        cdf.add(3.0)
        assert cdf.fraction_at_or_below(1.0) == pytest.approx(0.5)


class TestQuantiles:
    def test_value_at_fraction_inverse(self):
        cdf = Cdf()
        cdf.extend(range(1, 101))
        assert cdf.value_at_fraction(0.5) == 50
        assert cdf.value_at_fraction(1.0) == 100
        assert cdf.value_at_fraction(0.0) == 1

    def test_fraction_out_of_range(self):
        cdf = Cdf()
        cdf.add(1.0)
        with pytest.raises(ValueError):
            cdf.value_at_fraction(1.5)


class TestPoints:
    def test_points_cover_extremes(self):
        cdf = Cdf()
        cdf.extend(range(1000))
        points = cdf.points(max_points=10)
        assert points[0].value == 0
        assert points[-1].value == 999
        assert points[-1].fraction == pytest.approx(1.0)
        assert len(points) <= 10

    def test_points_small_sample_all_returned(self):
        cdf = Cdf()
        cdf.extend([1, 2, 3])
        assert len(cdf.points()) == 3

    def test_points_requires_two(self):
        cdf = Cdf()
        cdf.add(1.0)
        with pytest.raises(ValueError):
            cdf.points(max_points=1)

    def test_sample_at_probes(self):
        cdf = Cdf()
        cdf.extend([1, 2, 3, 4])
        probed = cdf.sample_at([0, 2, 10])
        assert [p.fraction for p in probed] == [0.0, 0.5, 1.0]


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1, max_size=300))
@settings(max_examples=100, deadline=None)
def test_cdf_monotone_property(values):
    cdf = Cdf()
    cdf.extend(values)
    probes = sorted(set(values))
    fractions = [cdf.fraction_at_or_below(p) for p in probes]
    assert all(a <= b for a, b in zip(fractions, fractions[1:]))
    assert fractions[-1] == pytest.approx(1.0)


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e6),
            st.floats(min_value=0.001, max_value=1e3),
        ),
        min_size=1,
        max_size=100,
    ),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_quantile_roundtrip_property(samples, fraction):
    cdf = Cdf()
    for value, weight in samples:
        cdf.add(value, weight=weight)
    value = cdf.value_at_fraction(fraction)
    # The CDF at the returned value must reach the requested fraction.
    assert cdf.fraction_at_or_below(value) >= fraction - 1e-9
