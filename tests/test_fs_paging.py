"""Tests for the paging model and the ids/errors foundations."""

import pytest

from repro.common import errors
from repro.common.ids import IdAllocator
from repro.common.rng import RngStream
from repro.fs.client import ClientKernel
from repro.fs.config import ClusterConfig
from repro.fs.paging import EXECUTABLE_FILE_ID_BASE, PagingModel
from repro.fs.server import Server
from repro.fs.vm import VirtualMemory
from repro.sim import Engine


def make_paging_rig(seed=3, intensity=1.0):
    config = ClusterConfig(client_count=1)
    engine = Engine()
    server = Server(config.server_memory, config.block_size)
    vm = VirtualMemory(
        total_pages=config.client_page_count,
        preference_seconds=config.vm_preference,
        base_demand_pages=1000,
        cache_floor_pages=config.min_cache_size // config.block_size,
    )
    client = ClientKernel(0, config, engine, server, vm)
    server.register_client(client)
    rng = RngStream.root(seed)
    binaries = PagingModel.build_binaries(rng.fork("bins"))
    model = PagingModel(client, engine, rng.fork("paging"), binaries,
                        intensity=intensity)
    return engine, client, model


class TestPagingModel:
    def test_binaries_have_code_and_data(self):
        binaries = PagingModel.build_binaries(RngStream.root(1))
        assert len(binaries) == 24
        for binary in binaries:
            assert binary.file_id >= EXECUTABLE_FILE_ID_BASE
            assert binary.code_bytes > 0
            assert binary.data_bytes > 0

    def test_first_pulse_is_startup_burst(self):
        engine, client, model = make_paging_rig()
        model.on_activity(0.0, migrated=False)
        assert client.counters.paging_code_bytes > 0
        assert client.counters.paging_data_bytes > 0

    def test_steady_state_generates_traffic(self):
        engine, client, model = make_paging_rig()
        model.on_activity(0.0, migrated=False)
        for step in range(1, 400):
            model.on_activity(float(step), migrated=False)
        assert client.counters.paging_backing_bytes_read > 0
        assert client.counters.paging_backing_bytes_written > 0

    def test_idle_gap_triggers_new_burst(self):
        engine, client, model = make_paging_rig()
        model.on_activity(0.0, migrated=False)
        code_after_first = client.counters.paging_code_bytes
        engine.run_until(5000.0)
        model.on_activity(5000.0, migrated=False)  # > IDLE_THRESHOLD
        assert client.counters.paging_code_bytes > code_after_first

    def test_burst_schedules_working_set_release(self):
        engine, client, model = make_paging_rig()
        active_before = client.vm.active
        model.on_activity(0.0, migrated=False)
        assert client.vm.active > active_before
        engine.run_until(46 * 60.0)  # releases fire within 25 minutes
        assert client.vm.active + client.vm.aging >= active_before
        assert client.vm.aging > 0

    def test_popular_binary_pages_hit_after_warmup(self):
        engine, client, model = make_paging_rig(seed=9)
        for step in range(300):
            model.on_activity(step * 2.0, migrated=False)
            if step % 50 == 0:
                engine.run_until(step * 2.0 + 1.0)
        counters = client.counters
        assert counters.paging_read_misses < counters.paging_read_ops

    def test_intensity_scales_traffic(self):
        _, quiet_client, quiet = make_paging_rig(seed=5, intensity=0.5)
        _, loud_client, loud = make_paging_rig(seed=5, intensity=3.0)
        for step in range(200):
            quiet.on_activity(float(step), migrated=False)
            loud.on_activity(float(step), migrated=False)
        assert (loud_client.counters.raw_paging_bytes
                > quiet_client.counters.raw_paging_bytes)


class TestIdAllocator:
    def test_dense_allocation(self):
        alloc = IdAllocator()
        assert [alloc.allocate() for _ in range(3)] == [0, 1, 2]
        assert alloc.allocated == 3

    def test_custom_start(self):
        assert IdAllocator(start=10).allocate() == 10

    def test_negative_start_raises(self):
        with pytest.raises(ValueError):
            IdAllocator(start=-1)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in ("ConfigError", "TraceError", "TraceOrderError",
                     "SimulationError", "SchedulingError", "CacheError",
                     "ConsistencyError", "AnalysisError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_order_error_is_trace_error(self):
        assert issubclass(errors.TraceOrderError, errors.TraceError)

    def test_scheduling_error_is_simulation_error(self):
        assert issubclass(errors.SchedulingError, errors.SimulationError)
