"""Tests for the Section 4 analyses (episodes, Tables 1-3, Figures 1-4)."""

import pytest

from repro.analysis import (
    assemble_accesses,
    classify_access,
    compute_access_patterns,
    compute_activity,
    compute_file_sizes,
    compute_lifetimes,
    compute_open_times,
    compute_run_lengths,
    compute_table1,
)
from repro.analysis.access_patterns import (
    AccessType,
    Sequentiality,
    merge_pattern_results,
    render_table3,
)
from repro.analysis.table1 import render_table1
from repro.common.units import TEN_MINUTES
from repro.trace.records import (
    AccessMode,
    CloseRecord,
    DeleteRecord,
    OpenRecord,
    ReadRunRecord,
    RepositionRecord,
    WriteRunRecord,
)


def episode(
    open_id=1,
    file_id=1,
    size=1000,
    runs=((False, 0, 1000),),
    t0=0.0,
    duration=1.0,
    user_id=1,
    migrated=False,
    repositions=0,
):
    """Build a legal episode: (is_write, offset, length) per run."""
    records = [
        OpenRecord(time=t0, server_id=0, open_id=open_id, file_id=file_id,
                   user_id=user_id, mode=AccessMode.READ_WRITE,
                   size_at_open=size, migrated=migrated),
    ]
    step = duration / (len(runs) + 1)
    bytes_read = bytes_written = 0
    for index, (is_write, offset, length) in enumerate(runs):
        cls = WriteRunRecord if is_write else ReadRunRecord
        records.append(
            cls(time=t0 + step * (index + 1), server_id=0, open_id=open_id,
                file_id=file_id, user_id=user_id, offset=offset,
                length=length, migrated=migrated)
        )
        if is_write:
            bytes_written += length
        else:
            bytes_read += length
    for index in range(repositions):
        records.append(
            RepositionRecord(time=t0 + duration * 0.9, server_id=0,
                             open_id=open_id, file_id=file_id,
                             user_id=user_id, offset_before=0, offset_after=0)
        )
    records.append(
        CloseRecord(time=t0 + duration, server_id=0, open_id=open_id,
                    file_id=file_id, user_id=user_id,
                    size_at_close=max(size, *(o + l for _, o, l in runs)) if runs else size,
                    bytes_read=bytes_read, bytes_written=bytes_written,
                    migrated=migrated)
    )
    return records


class TestEpisodeAssembly:
    def test_basic_access(self):
        accesses = list(assemble_accesses(episode()))
        assert len(accesses) == 1
        access = accesses[0]
        assert access.bytes_read == 1000
        assert access.bytes_written == 0
        assert access.duration == 1.0

    def test_contiguous_runs_merge(self):
        records = episode(runs=((False, 0, 500), (False, 500, 500)))
        access = next(assemble_accesses(records))
        assert len(access.runs) == 1
        assert access.runs[0].length == 1000

    def test_noncontiguous_runs_stay_separate(self):
        records = episode(runs=((False, 0, 100), (False, 500, 100)))
        access = next(assemble_accesses(records))
        assert len(access.runs) == 2

    def test_kind_change_breaks_run(self):
        records = episode(runs=((False, 0, 100), (True, 100, 100)))
        access = next(assemble_accesses(records))
        assert len(access.runs) == 2

    def test_unclosed_episode_dropped(self):
        records = episode()[:-1]
        assert list(assemble_accesses(records)) == []

    def test_close_without_open_ignored(self):
        records = episode()[1:]
        assert list(assemble_accesses(records)) == []

    def test_reposition_counted(self):
        records = sorted(episode(repositions=2), key=lambda r: r.time)
        access = next(assemble_accesses(records))
        assert access.reposition_count == 2

    def test_interleaved_episodes(self):
        a = episode(open_id=1, t0=0.0, duration=10.0)
        b = episode(open_id=2, t0=1.0, duration=2.0)
        records = sorted(a + b, key=lambda r: r.time)
        accesses = list(assemble_accesses(records))
        assert len(accesses) == 2
        assert {a.open_record.open_id for a in accesses} == {1, 2}


class TestClassification:
    def test_whole_file_read(self):
        access = next(assemble_accesses(episode(size=1000)))
        assert classify_access(access) == (
            AccessType.READ_ONLY, Sequentiality.WHOLE_FILE
        )

    def test_prefix_read_is_other_sequential(self):
        access = next(assemble_accesses(episode(size=1000,
                                                runs=((False, 0, 400),))))
        assert classify_access(access) == (
            AccessType.READ_ONLY, Sequentiality.OTHER_SEQUENTIAL
        )

    def test_multiple_runs_is_random(self):
        access = next(assemble_accesses(
            episode(runs=((False, 0, 100), (False, 500, 100)))
        ))
        assert classify_access(access)[1] is Sequentiality.RANDOM

    def test_whole_file_write(self):
        access = next(assemble_accesses(
            episode(size=0, runs=((True, 0, 800),))
        ))
        assert classify_access(access) == (
            AccessType.WRITE_ONLY, Sequentiality.WHOLE_FILE
        )

    def test_append_is_other_sequential(self):
        access = next(assemble_accesses(
            episode(size=1000, runs=((True, 1000, 200),))
        ))
        assert classify_access(access) == (
            AccessType.WRITE_ONLY, Sequentiality.OTHER_SEQUENTIAL
        )

    def test_read_write_access(self):
        access = next(assemble_accesses(
            episode(runs=((False, 0, 100), (True, 0, 100)))
        ))
        assert classify_access(access)[0] is AccessType.READ_WRITE

    def test_zero_byte_access_skipped(self):
        access = next(assemble_accesses(episode(runs=())))
        assert classify_access(access) is None

    def test_pattern_result_counts(self):
        records = sorted(
            episode(open_id=1) + episode(open_id=2, t0=5.0)
            + episode(open_id=3, t0=10.0, size=0, runs=((True, 0, 500),)),
            key=lambda r: r.time,
        )
        result = compute_access_patterns(assemble_accesses(records))
        assert result.total_accesses == 3
        assert result.type_share(AccessType.READ_ONLY) == pytest.approx(2 / 3)
        assert result.type_share(AccessType.WRITE_ONLY, by_bytes=True) == (
            pytest.approx(500 / 2500)
        )

    def test_merge_pattern_results(self):
        r1 = compute_access_patterns(assemble_accesses(episode()))
        r2 = compute_access_patterns(assemble_accesses(episode()))
        merged = merge_pattern_results([r1, r2])
        assert merged.total_accesses == 2

    def test_render_table3(self):
        result = compute_access_patterns(assemble_accesses(episode()))
        text = render_table3(result, [result])
        assert "Table 3" in text
        assert "Read-only" in text


class TestTable1:
    def test_counts(self, small_trace):
        stats = compute_table1("t", small_trace.records, small_trace.duration)
        assert stats.open_events == sum(
            1 for r in small_trace.records if r.kind == "open"
        )
        assert stats.close_events <= stats.open_events
        assert stats.mbytes_read > 0
        assert stats.different_users > 0
        assert stats.users_of_migration >= 1
        assert stats.users_of_migration < stats.different_users

    def test_render(self, small_trace):
        stats = compute_table1("t", small_trace.records, small_trace.duration)
        text = render_table1([stats])
        assert "Open events" in text


class TestActivity:
    def test_single_user_interval(self):
        records = sorted(episode(duration=5.0), key=lambda r: r.time)
        result = compute_activity([(records, TEN_MINUTES * 2)])
        scale = result.ten_minute_all
        assert scale.maximum_active_users == 1
        # One active interval out of two -> average 0.5.
        assert scale.average_active_users == pytest.approx(0.5)
        # 1000 bytes over 600 s.
        assert scale.average_throughput_kbs == pytest.approx(
            1000 / 600 / 1024
        )

    def test_migrated_split(self):
        normal = episode(open_id=1, user_id=1)
        migrated = episode(open_id=2, user_id=2, t0=5.0, migrated=True)
        records = sorted(normal + migrated, key=lambda r: r.time)
        result = compute_activity([(records, TEN_MINUTES)])
        assert result.ten_minute_all.maximum_active_users == 2
        assert result.ten_minute_migrated.maximum_active_users == 1

    def test_peak_total(self):
        a = episode(open_id=1, user_id=1)
        b = episode(open_id=2, user_id=2)
        records = sorted(a + b, key=lambda r: r.time)
        result = compute_activity([(records, TEN_MINUTES)])
        assert result.ten_minute_all.peak_total_throughput_kbs == pytest.approx(
            2000 / 600 / 1024
        )

    def test_render(self, small_trace):
        result = compute_activity([(small_trace.records, small_trace.duration)])
        assert "Table 2" in result.render()


class TestFigures:
    def test_run_lengths(self):
        records = sorted(
            episode(open_id=1, runs=((False, 0, 100),))
            + episode(open_id=2, t0=5.0, runs=((False, 0, 1_000_000),),
                      size=1_000_000),
            key=lambda r: r.time,
        )
        result = compute_run_lengths(assemble_accesses(records))
        assert result.by_runs.count == 2
        assert result.by_runs.fraction_at_or_below(100) == pytest.approx(0.5)
        # By bytes the megabyte run dominates.
        assert result.by_bytes.fraction_at_or_below(100) < 0.001

    def test_file_sizes_weighted_by_transfer(self):
        records = sorted(
            episode(open_id=1, size=100, runs=((False, 0, 100),))
            + episode(open_id=2, t0=5.0, size=10_000,
                      runs=((False, 0, 10_000),)),
            key=lambda r: r.time,
        )
        result = compute_file_sizes(assemble_accesses(records))
        assert result.by_accesses.fraction_at_or_below(100) == pytest.approx(0.5)
        assert result.by_bytes.fraction_at_or_below(100) == pytest.approx(
            100 / 10_100
        )

    def test_open_times(self):
        records = sorted(
            episode(open_id=1, duration=0.1)
            + episode(open_id=2, t0=5.0, duration=10.0),
            key=lambda r: r.time,
        )
        result = compute_open_times(assemble_accesses(records))
        assert result.by_opens.fraction_at_or_below(0.25) == pytest.approx(0.5)

    def test_lifetimes_per_file_estimator(self):
        delete = DeleteRecord(time=100.0, server_id=0, file_id=1, user_id=1,
                              client_id=0, size=1000, oldest_byte_time=40.0,
                              newest_byte_time=80.0)
        result = compute_lifetimes([delete])
        # per-file lifetime = average of oldest (60) and newest (20) ages.
        assert result.by_files.median() == pytest.approx(40.0)

    def test_lifetimes_per_byte_span(self):
        delete = DeleteRecord(time=100.0, server_id=0, file_id=1, user_id=1,
                              client_id=0, size=800, oldest_byte_time=0.0,
                              newest_byte_time=100.0)
        result = compute_lifetimes([delete])
        assert result.by_bytes.total_weight == pytest.approx(800)
        # Byte ages span 0..100; about half the mass is under 50.
        assert result.by_bytes.fraction_at_or_below(50.0) == pytest.approx(
            0.5, abs=0.1
        )

    def test_lifetime_unknown_files_counted(self):
        delete = DeleteRecord(time=100.0, server_id=0, file_id=1, user_id=1,
                              client_id=0, size=0, oldest_byte_time=-1.0)
        result = compute_lifetimes([delete])
        assert result.unknown_lifetime_deletes == 1
        assert result.by_files.count == 0

    def test_figure_renderers(self, small_trace):
        accesses = list(assemble_accesses(small_trace.records))
        assert "Figure 1" in compute_run_lengths(accesses).render()
        assert "Figure 2" in compute_file_sizes(accesses).render()
        assert "Figure 3" in compute_open_times(accesses).render()
        assert "Figure 4" in compute_lifetimes(small_trace.records).render()
